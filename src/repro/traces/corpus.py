"""Content-addressed trace corpora: manifest, integrity, provenance.

A *corpus* is a directory::

    <root>/manifest.json        # the registry (committed / shared)
    <root>/traces/<name>.pps    # canonical mahimahi trace files (cache)

The manifest records, per trace: the canonical file, its SHA-256, the
opportunity count, descriptive stats, and a **source** provenance record
— either a :class:`~repro.traces.synth.SynthSpec` (``kind: synth``,
regenerable bit-identically), an external import (``kind: import``, with
the original path/format/hash), or an augmentation recipe
(``kind: augment``, see :mod:`repro.traces.workload`).

Because synthesis is seeded and the on-disk encoding canonical, a
manifest with only ``synth``/``augment`` sources is self-contained: the
trace files can be deleted and regenerated, and ``repro corpus build``
run twice (at any ``--jobs``) yields byte-identical files and manifest.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from ..cellular.trace_io import TraceFormatError
from .formats import read_trace_ms, validate_ms
from .stats import characterize
from .synth import SynthSpec

PathLike = Union[str, os.PathLike]

#: Default on-disk location, mirroring the campaign cache's dot-dir.
DEFAULT_CORPUS_DIR = ".repro-corpus"
MANIFEST_NAME = "manifest.json"
TRACE_SUBDIR = "traces"
MANIFEST_VERSION = 1

#: Named corpora: regime × technology families regenerable from seeds.
CORPUS_PRESETS: Dict[str, List[SynthSpec]] = {
    "default": [
        SynthSpec(regime=regime, technology=tech, duration=30.0, seed=seed)
        for regime in ("stationary", "walking", "driving")
        for tech, seed in (("3g", 1), ("lte", 2))
    ],
    "mini": [
        SynthSpec(regime="stationary", technology="3g", duration=10.0, seed=1),
        SynthSpec(regime="driving", technology="3g", duration=10.0, seed=3),
    ],
}


def encode_canonical(times_ms: np.ndarray) -> bytes:
    """The canonical byte encoding a trace is content-addressed by:
    its mahimahi text file, one integer millisecond per line."""
    arr = validate_ms(times_ms)
    return ("\n".join(str(int(v)) for v in arr) + "\n").encode("ascii")


def trace_sha256(times_ms: np.ndarray) -> str:
    return hashlib.sha256(encode_canonical(times_ms)).hexdigest()


def sha256_file(path: PathLike) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=str(path.parent),
                               prefix=f".{path.name}.", suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@dataclass
class TraceEntry:
    """One manifest row: where a trace lives and where it came from."""

    name: str
    file: str                       # relative to the corpus root
    sha256: str
    opportunities: int
    source: dict                    # {"kind": "synth"|"import"|"augment", ...}
    stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "file": self.file,
            "sha256": self.sha256,
            "opportunities": self.opportunities,
            "source": self.source,
            "stats": self.stats,
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "TraceEntry":
        return cls(name=name, file=payload["file"], sha256=payload["sha256"],
                   opportunities=int(payload["opportunities"]),
                   source=dict(payload["source"]),
                   stats=dict(payload.get("stats", {})))


class CorpusError(RuntimeError):
    """Manifest missing/corrupt, hash mismatch, unknown trace, ..."""


class Corpus:
    """An open corpus directory; entries keyed by trace name."""

    def __init__(self, root: PathLike,
                 entries: Optional[Dict[str, TraceEntry]] = None,
                 name: str = ""):
        self.root = Path(root)
        self.name = name or self.root.name
        self.entries: Dict[str, TraceEntry] = dict(entries or {})

    # -- paths ----------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        return self.root / MANIFEST_NAME

    def trace_path(self, name: str) -> Path:
        return self.root / self.entry(name).file

    def entry(self, name: str) -> TraceEntry:
        try:
            return self.entries[name]
        except KeyError:
            raise CorpusError(
                f"corpus {self.root}: no trace named {name!r} "
                f"(have: {', '.join(sorted(self.entries)) or 'none'})"
            ) from None

    def names(self) -> List[str]:
        return sorted(self.entries)

    # -- manifest I/O ---------------------------------------------------
    def save_manifest(self) -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "name": self.name,
            "traces": {name: self.entries[name].to_dict()
                       for name in sorted(self.entries)},
        }
        text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        _atomic_write_bytes(self.manifest_path, text.encode("utf-8"))

    # -- content access -------------------------------------------------
    def load_ms(self, name: str, verify: bool = True) -> np.ndarray:
        """Read a trace (canonical ms), regenerating a regenerable one
        whose file is missing, and checking the hash unless told not to."""
        entry = self.entry(name)
        path = self.trace_path(name)
        if not path.exists():
            times_ms = self.regenerate_ms(name)
            _atomic_write_bytes(path, encode_canonical(times_ms))
            return times_ms
        times_ms = read_trace_ms(path, fmt="mahimahi")
        if verify:
            digest = trace_sha256(times_ms)
            if digest != entry.sha256:
                raise CorpusError(
                    f"corpus {self.root}: trace {name!r} content hash "
                    f"{digest[:12]} does not match manifest "
                    f"{entry.sha256[:12]} — file modified or corrupt")
        return times_ms

    def load_seconds(self, name: str, verify: bool = True) -> np.ndarray:
        return self.load_ms(name, verify=verify).astype(float) / 1000.0

    def regenerate_ms(self, name: str) -> np.ndarray:
        """Recompute a trace from its provenance record alone."""
        entry = self.entry(name)
        kind = entry.source.get("kind")
        if kind == "synth":
            times_ms = SynthSpec.from_dict(entry.source).generate_ms()
        elif kind == "augment":
            from .workload import apply_augment
            parent = self.load_ms(entry.source["parent"])
            times_ms = apply_augment(entry.source["op"], parent,
                                     entry.source.get("params", {}),
                                     entry.source["seed"])
        else:
            raise CorpusError(
                f"corpus {self.root}: trace {name!r} has source kind "
                f"{kind!r} and its file is gone — imported traces cannot "
                f"be regenerated")
        digest = trace_sha256(times_ms)
        if digest != entry.sha256:
            raise CorpusError(
                f"corpus {self.root}: regenerating {name!r} produced hash "
                f"{digest[:12]}, manifest says {entry.sha256[:12]} — "
                f"channel model or spec drift; rebuild the corpus")
        return times_ms

    # -- integrity ------------------------------------------------------
    def verify(self) -> Dict[str, str]:
        """Re-hash every trace file against the manifest.

        Returns name → ``"ok"`` / ``"missing"`` / ``"mismatch: ..."``;
        a missing regenerable trace is not an error (the manifest can
        rebuild it) but is still reported as missing.
        """
        report: Dict[str, str] = {}
        for name in self.names():
            entry = self.entries[name]
            path = self.root / entry.file
            if not path.exists():
                report[name] = "missing"
                continue
            try:
                digest = trace_sha256(read_trace_ms(path, fmt="mahimahi"))
            except TraceFormatError as exc:
                report[name] = f"mismatch: unreadable ({exc})"
                continue
            report[name] = ("ok" if digest == entry.sha256
                            else f"mismatch: {digest[:12]} != "
                                 f"{entry.sha256[:12]}")
        return report

    def materialize(self) -> List[str]:
        """Regenerate every regenerable trace file that is missing or
        stale; returns the names written."""
        written = []
        for name in self.names():
            entry = self.entries[name]
            path = self.root / entry.file
            if path.exists():
                if trace_sha256(read_trace_ms(path, "mahimahi")) == entry.sha256:
                    continue
            times_ms = self.regenerate_ms(name)
            _atomic_write_bytes(path, encode_canonical(times_ms))
            written.append(name)
        return written

    # -- mutation -------------------------------------------------------
    def add_trace(self, name: str, times_ms: np.ndarray, source: dict,
                  overwrite: bool = False) -> TraceEntry:
        """Register a trace: write the canonical file and manifest row."""
        if name in self.entries and not overwrite:
            raise CorpusError(f"corpus {self.root}: trace {name!r} already "
                              f"exists (pass overwrite=True to replace)")
        times_ms = validate_ms(times_ms, name)
        data = encode_canonical(times_ms)
        rel = f"{TRACE_SUBDIR}/{name}.pps"
        _atomic_write_bytes(self.root / rel, data)
        entry = TraceEntry(
            name=name, file=rel,
            sha256=hashlib.sha256(data).hexdigest(),
            opportunities=int(times_ms.size),
            source=dict(source),
            stats=characterize(times_ms).to_dict(),
        )
        self.entries[name] = entry
        self.save_manifest()
        return entry


# ----------------------------------------------------------------------
# Opening / building / importing
# ----------------------------------------------------------------------
def load_corpus(root: PathLike) -> Corpus:
    """Open an existing corpus directory (its manifest must exist)."""
    root = Path(root)
    manifest = root / MANIFEST_NAME
    if not manifest.exists():
        raise CorpusError(f"no corpus at {root}: {MANIFEST_NAME} not found "
                          f"(run 'repro corpus build' first?)")
    try:
        payload = json.loads(manifest.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CorpusError(f"corpus {root}: unreadable manifest: {exc}")
    if payload.get("version") != MANIFEST_VERSION:
        raise CorpusError(f"corpus {root}: unsupported manifest version "
                          f"{payload.get('version')!r}")
    entries = {name: TraceEntry.from_dict(name, row)
               for name, row in payload.get("traces", {}).items()}
    return Corpus(root, entries=entries, name=payload.get("name", ""))


def _synth_build_task(payload: dict) -> dict:
    """One corpus cell: synthesize, encode, hash.  Module-level so the
    campaign pool can pickle it; the parent writes files afterwards, so
    output is byte-identical at any ``--jobs``."""
    spec = SynthSpec.from_dict(payload["spec"])
    times_ms = spec.generate_ms()
    return {
        "name": payload["name"],
        "text": encode_canonical(times_ms).decode("ascii"),
        "sha256": trace_sha256(times_ms),
        "opportunities": int(times_ms.size),
        "stats": characterize(times_ms).to_dict(),
    }


@dataclass
class BuildReport:
    """What a (re)build did: names freshly written vs already current."""

    corpus: Corpus
    built: List[str]
    unchanged: List[str]

    @property
    def total(self) -> int:
        return len(self.built) + len(self.unchanged)


def build_corpus(root: PathLike = DEFAULT_CORPUS_DIR,
                 preset: str = "default",
                 specs: Optional[Sequence[SynthSpec]] = None,
                 jobs: int = 1, force: bool = False,
                 progress: Optional[Callable[[str, str], None]] = None
                 ) -> BuildReport:
    """Build (or refresh) a corpus from a named preset or explicit specs.

    Synthesis cells run through the campaign executor when ``jobs > 1``;
    files and the manifest are written by the parent in sorted-name
    order, so the result is bit-identical across runs and across
    ``--jobs 1`` vs ``--jobs N``.  A trace whose file already matches
    its spec's content hash is left untouched (content-addressed no-op)
    unless ``force`` is set.
    """
    from ..campaign.executor import run_tasks

    if specs is None:
        if preset not in CORPUS_PRESETS:
            raise CorpusError(f"unknown corpus preset {preset!r}; "
                              f"choose from {sorted(CORPUS_PRESETS)}")
        specs = CORPUS_PRESETS[preset]
    by_name = {spec.default_name(): spec for spec in specs}
    if len(by_name) != len(specs):
        raise CorpusError("duplicate trace names in corpus specs")

    root = Path(root)
    corpus: Corpus
    if (root / MANIFEST_NAME).exists():
        corpus = load_corpus(root)
    else:
        corpus = Corpus(root, name=preset)

    # Decide which cells need synthesis: a cell is current iff its
    # manifest row records the same spec AND the file hash matches.
    todo: List[dict] = []
    unchanged: List[str] = []
    for name in sorted(by_name):
        spec = by_name[name]
        entry = corpus.entries.get(name)
        if not force and entry is not None \
                and entry.source == spec.to_dict():
            path = root / entry.file
            if path.exists():
                try:
                    current = trace_sha256(read_trace_ms(path, "mahimahi"))
                except TraceFormatError:
                    current = None
                if current == entry.sha256:
                    unchanged.append(name)
                    continue
        todo.append({"name": name, "spec": spec.to_dict()})

    built: List[str] = []
    if todo:
        def report(outcome, done, total) -> None:
            if progress is not None:
                status = outcome.status if outcome.ok else \
                    f"{outcome.status}: {outcome.error}"
                progress(todo[outcome.index]["name"], status)

        run = run_tasks(todo, _synth_build_task, jobs=jobs,
                        progress=report if progress is not None else None)
        failures = [o for o in run.outcomes if not o.ok]
        if failures:
            first = failures[0]
            raise CorpusError(f"corpus build failed for "
                              f"{todo[first.index]['name']!r}: {first.error}")
        # Parent-side writes, in sorted-name order (jobs-independent).
        for outcome in sorted(run.outcomes,
                              key=lambda o: todo[o.index]["name"]):
            name = todo[outcome.index]["name"]
            result = outcome.result
            rel = f"{TRACE_SUBDIR}/{name}.pps"
            _atomic_write_bytes(root / rel, result["text"].encode("ascii"))
            corpus.entries[name] = TraceEntry(
                name=name, file=rel, sha256=result["sha256"],
                opportunities=result["opportunities"],
                source=by_name[name].to_dict(), stats=result["stats"])
            built.append(name)

    # Drop manifest rows for synth traces no longer in the spec family,
    # keeping imports/augments (they are user data, not preset output).
    for name in list(corpus.entries):
        if name not in by_name \
                and corpus.entries[name].source.get("kind") == "synth":
            del corpus.entries[name]

    corpus.name = corpus.name or preset
    corpus.save_manifest()
    return BuildReport(corpus=corpus, built=built, unchanged=unchanged)


def import_trace(corpus: Corpus, src: PathLike, name: Optional[str] = None,
                 fmt: Optional[str] = None,
                 overwrite: bool = False) -> TraceEntry:
    """Import an external trace file, converting to the canonical format
    and recording provenance (original path, format and content hash)."""
    src = Path(src)
    resolved_fmt = fmt
    if resolved_fmt is None:
        from .formats import detect_format
        resolved_fmt = detect_format(src)
    times_ms = read_trace_ms(src, resolved_fmt)
    if times_ms.size == 0:
        raise TraceFormatError(f"{src}: refusing to import an empty trace")
    if name is None:
        name = src.stem
    source = {
        "kind": "import",
        "path": str(src),
        "format": resolved_fmt,
        "original_sha256": sha256_file(src),
    }
    return corpus.add_trace(name, times_ms, source, overwrite=overwrite)
