"""Multi-format trace readers/writers with lossless conversion.

The corpus subsystem's canonical in-memory representation is an array of
**integer millisecond timestamps** (sorted, repeats allowed — the
Mahimahi delivery-opportunity convention, 1 ms resolution).  Three
on-disk formats encode it, each round-tripping losslessly:

``mahimahi``
    One integer per line: the millisecond of a delivery opportunity
    (``.pps`` / ``.up`` / ``.down`` in the mahimahi corpora used by the
    C2TCP and Goyal et al. evaluations).
``seconds``
    One float per line: the opportunity timestamp in seconds, written
    with exactly millisecond precision (``0.042``) so parsing recovers
    the integer millisecond bit-exactly.
``csv``
    A rate series: ``time_ms,packets`` rows giving the number of
    delivery opportunities in each (sparse, nonzero) millisecond bin —
    the natural export for spreadsheet/plotting tools, still lossless
    because opportunities are already ms-quantised.

:func:`detect_format` sniffs a file (extension first, then content), so
every consumer — the ``repro corpus`` CLI, the live emulator, ``repro
live --trace`` — accepts any of the three without being told which.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional, Union

import numpy as np

from ..cellular.trace_io import TraceFormatError

PathLike = Union[str, os.PathLike]

#: Supported on-disk formats, in auto-detection preference order.
FORMATS = ("mahimahi", "seconds", "csv")

_EXTENSION_HINTS = {
    ".pps": "mahimahi",
    ".up": "mahimahi",
    ".down": "mahimahi",
    ".csv": "csv",
    ".sec": "seconds",
}

_CSV_HEADER = "time_ms,packets"


# ----------------------------------------------------------------------
# Canonical representation helpers
# ----------------------------------------------------------------------
def as_milliseconds(times_s: np.ndarray) -> np.ndarray:
    """Quantise second-domain timestamps to the canonical ms grid."""
    arr = np.asarray(times_s, dtype=float)
    _validate_seconds(arr, "trace")
    return np.round(arr * 1000.0).astype(np.int64)


def as_seconds(times_ms: np.ndarray) -> np.ndarray:
    """Canonical ms timestamps back to the seconds the simulator uses."""
    return validate_ms(times_ms, "trace").astype(float) / 1000.0


def validate_ms(times_ms: np.ndarray, origin: str = "trace") -> np.ndarray:
    """Check an ms array against the canonical contract, return int64."""
    arr = np.asarray(times_ms)
    if arr.ndim != 1:
        raise TraceFormatError(f"{origin}: trace must be one-dimensional")
    if arr.size == 0:
        return arr.astype(np.int64)
    if np.issubdtype(arr.dtype, np.floating):
        if np.any(np.isnan(arr)):
            raise TraceFormatError(f"{origin}: trace contains NaN timestamps")
        if np.any(arr != np.round(arr)):
            raise TraceFormatError(
                f"{origin}: millisecond timestamps must be integers")
    arr = arr.astype(np.int64)
    if arr[0] < 0:
        raise TraceFormatError(f"{origin}: trace timestamps must be "
                               f"non-negative (first is {int(arr[0])})")
    if np.any(np.diff(arr) < 0):
        raise TraceFormatError(f"{origin}: trace timestamps are not sorted")
    return arr


def _validate_seconds(arr: np.ndarray, origin: str) -> None:
    if arr.ndim != 1:
        raise TraceFormatError(f"{origin}: trace must be one-dimensional")
    if arr.size == 0:
        return
    if np.any(np.isnan(arr)):
        raise TraceFormatError(f"{origin}: trace contains NaN timestamps")
    if arr[0] < 0:
        raise TraceFormatError(f"{origin}: trace timestamps must be "
                               f"non-negative")
    if np.any(np.diff(arr) < 0):
        raise TraceFormatError(f"{origin}: trace timestamps are not sorted")


# ----------------------------------------------------------------------
# Per-format readers/writers (all operate on canonical ms arrays)
# ----------------------------------------------------------------------
def _parse_lines(path: PathLike):
    text = Path(path).read_text()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        yield line_no, line


def read_mahimahi(path: PathLike) -> np.ndarray:
    values = []
    for line_no, line in _parse_lines(path):
        try:
            values.append(int(line))
        except ValueError:
            raise TraceFormatError(
                f"{path}: bad mahimahi line {line_no}: {line!r}") from None
    return validate_ms(np.asarray(values, dtype=np.int64), str(path))


def write_mahimahi(path: PathLike, times_ms: np.ndarray) -> None:
    arr = validate_ms(times_ms, str(path))
    Path(path).write_text("\n".join(str(int(v)) for v in arr) + "\n")


def read_seconds(path: PathLike) -> np.ndarray:
    values = []
    for line_no, line in _parse_lines(path):
        try:
            value = float(line)
        except ValueError:
            raise TraceFormatError(
                f"{path}: bad seconds line {line_no}: {line!r}") from None
        if not np.isfinite(value):
            raise TraceFormatError(
                f"{path}: non-finite timestamp on line {line_no}")
        values.append(value)
    arr = np.asarray(values, dtype=float)
    _validate_seconds(arr, str(path))
    return np.round(arr * 1000.0).astype(np.int64)


def write_seconds(path: PathLike, times_ms: np.ndarray) -> None:
    arr = validate_ms(times_ms, str(path))
    lines = [f"{int(v) // 1000}.{int(v) % 1000:03d}" for v in arr]
    Path(path).write_text("\n".join(lines) + "\n")


def read_csv(path: PathLike) -> np.ndarray:
    parts = []
    last_ms = -1
    for line_no, line in _parse_lines(path):
        if line.replace(" ", "") == _CSV_HEADER:
            continue
        fields = line.split(",")
        if len(fields) != 2:
            raise TraceFormatError(
                f"{path}: bad csv line {line_no}: {line!r} "
                f"(expected '{_CSV_HEADER}')")
        try:
            ms, count = int(fields[0]), int(fields[1])
        except ValueError:
            raise TraceFormatError(
                f"{path}: bad csv line {line_no}: {line!r}") from None
        if count < 0:
            raise TraceFormatError(
                f"{path}: negative packet count on line {line_no}")
        if ms <= last_ms:
            raise TraceFormatError(
                f"{path}: csv bins are not strictly increasing "
                f"(line {line_no})")
        last_ms = ms
        if count:
            parts.append(np.full(count, ms, dtype=np.int64))
    if not parts:
        return np.empty(0, dtype=np.int64)
    return validate_ms(np.concatenate(parts), str(path))


def write_csv(path: PathLike, times_ms: np.ndarray) -> None:
    arr = validate_ms(times_ms, str(path))
    bins, counts = np.unique(arr, return_counts=True)
    lines = [_CSV_HEADER]
    lines.extend(f"{int(ms)},{int(n)}" for ms, n in zip(bins, counts))
    Path(path).write_text("\n".join(lines) + "\n")


_READERS = {"mahimahi": read_mahimahi, "seconds": read_seconds,
            "csv": read_csv}
_WRITERS = {"mahimahi": write_mahimahi, "seconds": write_seconds,
            "csv": write_csv}


# ----------------------------------------------------------------------
# Auto-detection and the uniform entry points
# ----------------------------------------------------------------------
def detect_format(path: PathLike) -> str:
    """Identify a trace file's format by extension, then content.

    Content sniffing looks at the first data line: a comma means csv, a
    decimal point means seconds, otherwise mahimahi integers.
    """
    suffix = Path(path).suffix.lower()
    if suffix in _EXTENSION_HINTS:
        return _EXTENSION_HINTS[suffix]
    for _, line in _parse_lines(path):
        if "," in line:
            return "csv"
        if "." in line or "e" in line.lower():
            return "seconds"
        return "mahimahi"
    # An empty file is a valid (empty) trace in any format.
    return "mahimahi"


def _resolve(fmt: Optional[str], path: PathLike) -> str:
    resolved = fmt if fmt is not None else detect_format(path)
    if resolved not in FORMATS:
        raise TraceFormatError(f"unknown trace format {resolved!r}; "
                               f"choose from {FORMATS}")
    return resolved


def read_trace_ms(path: PathLike, fmt: Optional[str] = None) -> np.ndarray:
    """Read any supported format into canonical ms timestamps."""
    return _READERS[_resolve(fmt, path)](path)


def write_trace_ms(path: PathLike, times_ms: np.ndarray,
                   fmt: Optional[str] = None) -> None:
    """Write canonical ms timestamps in the given format; without one,
    the extension decides (default mahimahi — content sniffing cannot
    apply to a file that does not exist yet)."""
    if fmt is None:
        fmt = _EXTENSION_HINTS.get(Path(path).suffix.lower(), "mahimahi")
    if fmt not in FORMATS:
        raise TraceFormatError(f"unknown trace format {fmt!r}; "
                               f"choose from {FORMATS}")
    _WRITERS[fmt](path, times_ms)


def read_trace_seconds(path: PathLike, fmt: Optional[str] = None) -> np.ndarray:
    """Read any supported format into the seconds array the simulator's
    :class:`~repro.netsim.trace_link.TraceLink` and the live emulator
    consume."""
    return as_seconds(read_trace_ms(path, fmt))


def convert(src: PathLike, dst: PathLike,
            from_fmt: Optional[str] = None,
            to_fmt: Optional[str] = None) -> int:
    """Convert ``src`` to ``dst`` (formats auto-detected from content or
    extension unless given).  Returns the number of opportunities.

    Conversion is lossless: for any pair of formats, reading the output
    yields exactly the input's canonical ms timestamps.
    """
    times_ms = read_trace_ms(src, from_fmt)
    write_trace_ms(dst, times_ms, to_fmt)
    return int(times_ms.size)
