"""Measurement and analysis utilities: flow statistics, windowed series,
Jain's fairness index (eq. 7)."""

from .fairness import jain_index, windowed_jain_index, worst_case_index
from .recovery import RecoveryStats, recovery_stats
from .stats import (
    Delivery,
    FlowStats,
    aggregate_stats,
    delay_cdf,
    flow_stats,
    windowed_delay,
    windowed_throughput,
)

__all__ = [
    "Delivery",
    "FlowStats",
    "aggregate_stats",
    "delay_cdf",
    "flow_stats",
    "jain_index",
    "RecoveryStats",
    "recovery_stats",
    "windowed_delay",
    "windowed_jain_index",
    "windowed_throughput",
    "worst_case_index",
]
