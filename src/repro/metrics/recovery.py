"""Post-disruption recovery as a first-class metric.

The chaos acceptance matrix (see :mod:`repro.faults`) asserts that every
protocol *recovers* after a blackout: the session must keep terminating
cleanly and the flow must re-inflate its delivery rate within a deadline
once the link comes back.  This module reduces receiver delivery records
to that verdict.

Recovery time is measured the way an operator would read a rate graph:
the first instant ``t`` after the disruption ends at which the windowed
throughput over ``[t, t+window)`` regains at least ``fraction`` of the
pre-disruption throughput.  A flow that never moved before the
disruption counts as recovered as soon as it delivers anything at all
afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from .stats import Delivery


@dataclass
class RecoveryStats:
    """Verdict for one flow against one disruption window."""

    flow_id: int
    label: str
    disruption_start: Optional[float]
    disruption_end: Optional[float]
    pre_throughput_bps: float
    recovery_time: Optional[float]
    recovered: bool
    deadline: float
    post_packets: int

    def to_dict(self) -> dict:
        return {
            "flow_id": self.flow_id,
            "label": self.label,
            "disruption_start": self.disruption_start,
            "disruption_end": self.disruption_end,
            "pre_throughput_bps": float(self.pre_throughput_bps),
            "recovery_time": (None if self.recovery_time is None
                              else float(self.recovery_time)),
            "recovered": bool(self.recovered),
            "deadline": float(self.deadline),
            "post_packets": int(self.post_packets),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RecoveryStats":
        return cls(**payload)


def _throughput(rows: Sequence[Delivery], start: float, end: float) -> float:
    span = max(end - start, 1e-9)
    size = sum(d[3] for d in rows if start <= d[0] < end)
    return size * 8.0 / span


def recovery_stats(deliveries: Sequence[Delivery],
                   disruption_start: Optional[float],
                   disruption_end: Optional[float],
                   *, flow_id: int = 0, label: str = "",
                   window: float = 0.5, fraction: float = 0.3,
                   deadline: float = 5.0,
                   pre_span: float = 2.0) -> RecoveryStats:
    """Judge one flow's recovery from a disruption window.

    ``disruption_start``/``disruption_end`` of ``None`` mean the run had
    no disruption at all; the flow then counts as recovered iff it
    delivered anything (the degenerate healthy case).
    """
    if window <= 0 or deadline <= 0 or pre_span <= 0:
        raise ValueError("window, deadline and pre_span must be positive")
    if not 0.0 < fraction <= 1.0:
        raise ValueError("fraction must be in (0, 1]")
    rows = list(deliveries)
    if disruption_end is None:
        return RecoveryStats(
            flow_id=flow_id, label=label, disruption_start=None,
            disruption_end=None,
            pre_throughput_bps=_throughput(rows, 0.0, float("inf")),
            recovery_time=0.0 if rows else None, recovered=bool(rows),
            deadline=deadline, post_packets=len(rows))

    pre_rows = [d for d in rows
                if disruption_start - pre_span <= d[0] < disruption_start]
    pre_tput = _throughput(pre_rows, disruption_start - pre_span,
                           disruption_start)
    post_rows = [d for d in rows if d[0] >= disruption_end]

    recovery_time: Optional[float] = None
    if pre_tput <= 0.0:
        # Nothing to re-attain: first delivery after the disruption is
        # the recovery signal.
        if post_rows:
            recovery_time = min(d[0] for d in post_rows) - disruption_end
    else:
        target = fraction * pre_tput
        step = window / 2.0
        t = disruption_end
        while t - disruption_end <= deadline:
            if _throughput(post_rows, t, t + window) >= target:
                recovery_time = t - disruption_end
                break
            t += step

    recovered = recovery_time is not None and recovery_time <= deadline
    return RecoveryStats(
        flow_id=flow_id, label=label,
        disruption_start=disruption_start, disruption_end=disruption_end,
        pre_throughput_bps=pre_tput, recovery_time=recovery_time,
        recovered=recovered, deadline=deadline,
        post_packets=len(post_rows))
