"""Fairness metrics — Jain's index (eq. 7) and the paper's windowed variant.

The paper computes Jain's fairness index over one-second windows of
per-flow throughput and averages the per-window values into the overall
fairness number reported in Table 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .stats import Delivery, windowed_throughput


def jain_index(throughputs: Sequence[float]) -> float:
    """Jain's fairness index (eq. 7): (Σx)² / (n · Σx²), in [1/n, 1].

    Degenerate all-zero inputs return perfect fairness (everyone got
    nothing, equally).
    """
    x = np.asarray(list(throughputs), dtype=float)
    if x.size == 0:
        raise ValueError("need at least one throughput value")
    if np.any(x < 0):
        raise ValueError("throughputs must be non-negative")
    peak = float(x.max())
    if peak == 0:
        return 1.0
    # The index is scale-invariant, so normalise by the peak first:
    # subnormal inputs (~1e-159) would otherwise underflow the squares
    # and round the ratio just past 1.  Clamp the last ulp of rounding
    # noise into the mathematical [1/n, 1] range.
    x = x / peak
    denom = x.size * float(np.sum(x * x))
    index = float(np.sum(x)) ** 2 / denom
    return min(1.0, max(1.0 / x.size, index))


def windowed_jain_index(per_flow_deliveries: Dict[int, Sequence[Delivery]],
                        window: float = 1.0, start: float = 0.0,
                        end: Optional[float] = None,
                        skip_empty: bool = True) -> float:
    """The paper's Table 1 metric: Jain's index per 1 s window, averaged.

    ``skip_empty`` drops windows in which no flow received anything (e.g.
    a full channel outage), which would otherwise count as perfectly fair.
    """
    if not per_flow_deliveries:
        raise ValueError("need at least one flow")
    if end is None:
        end = max((d[0] for ds in per_flow_deliveries.values() for d in ds),
                  default=start)
    series = {}
    for flow_id, deliveries in per_flow_deliveries.items():
        _, tput = windowed_throughput(deliveries, window, start=start, end=end)
        series[flow_id] = tput
    n_windows = min((len(v) for v in series.values()), default=0)
    if n_windows == 0:
        return 1.0
    indices: List[float] = []
    for w in range(n_windows):
        values = [series[f][w] for f in series]
        if skip_empty and all(v == 0 for v in values):
            continue
        indices.append(jain_index(values))
    return float(np.mean(indices)) if indices else 1.0


def worst_case_index(n: int) -> float:
    """The 1/n lower bound of Jain's index for ``n`` flows."""
    if n < 1:
        raise ValueError("n must be at least 1")
    return 1.0 / n
