"""Flow statistics: throughput, delay and time-series utilities.

Every experiment reduces receiver delivery records — ``(arrival_time, seq,
delay, size)`` tuples — into the quantities the paper reports: average
throughput, average/percentile per-packet delay, windowed throughput
series (Fig 4, Fig 11–14) and summary scatter points (Figs 8–10).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

Delivery = Tuple[float, int, float, int]  # (time, seq, delay, size)


@dataclass
class FlowStats:
    """Summary statistics of one flow over an observation interval."""

    flow_id: int
    label: str
    duration: float
    bytes_received: int
    packets_received: int
    throughput_bps: float
    mean_delay: float
    median_delay: float
    p95_delay: float
    max_delay: float
    #: Repeat arrivals of an already-delivered sequence number (duplicating
    #: links, spurious retransmissions).  Excluded from every other figure:
    #: goodput counts each sequence number once.
    duplicate_packets: int = 0

    @property
    def throughput_mbps(self) -> float:
        return self.throughput_bps / 1e6

    @property
    def mean_delay_ms(self) -> float:
        return self.mean_delay * 1e3

    def as_dict(self) -> dict:
        return {
            "flow": self.flow_id,
            "label": self.label,
            "throughput_mbps": round(self.throughput_mbps, 3),
            "mean_delay_ms": round(self.mean_delay_ms, 1),
            "median_delay_ms": round(self.median_delay * 1e3, 1),
            "p95_delay_ms": round(self.p95_delay * 1e3, 1),
        }

    def to_dict(self) -> dict:
        """Full-precision JSON-safe serialization (``as_dict`` rounds for
        display).  NaN delays — an empty observation window — become None
        so the payload survives strict JSON round-trips."""

        def _num(value: float):
            return None if np.isnan(value) else float(value)

        return {
            "flow_id": self.flow_id,
            "label": self.label,
            "duration": float(self.duration),
            "bytes_received": int(self.bytes_received),
            "packets_received": int(self.packets_received),
            "throughput_bps": float(self.throughput_bps),
            "mean_delay": _num(self.mean_delay),
            "median_delay": _num(self.median_delay),
            "p95_delay": _num(self.p95_delay),
            "max_delay": _num(self.max_delay),
            "duplicate_packets": int(self.duplicate_packets),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FlowStats":
        """Inverse of :meth:`to_dict`."""

        def _num(value) -> float:
            return float("nan") if value is None else float(value)

        return cls(
            flow_id=int(payload["flow_id"]),
            label=payload["label"],
            duration=float(payload["duration"]),
            bytes_received=int(payload["bytes_received"]),
            packets_received=int(payload["packets_received"]),
            throughput_bps=float(payload["throughput_bps"]),
            mean_delay=_num(payload["mean_delay"]),
            median_delay=_num(payload["median_delay"]),
            p95_delay=_num(payload["p95_delay"]),
            max_delay=_num(payload["max_delay"]),
            # Absent in payloads persisted before the field existed.
            duplicate_packets=int(payload.get("duplicate_packets", 0)),
        )


def flow_stats(deliveries: Sequence[Delivery], flow_id: int = 0,
               label: str = "", start: float = 0.0,
               end: Optional[float] = None) -> FlowStats:
    """Summarise delivery records over ``[start, end)``.

    ``start`` defaults to dropping nothing; pass a warm-up cutoff to
    exclude slow-start transients, as the paper's averaged figures do.

    Statistics are *goodput*: only the first arrival of each sequence
    number counts towards bytes/packets/delay — repeat arrivals (a
    duplicating link, a spurious retransmission racing the original)
    are tallied separately in ``duplicate_packets`` so they can never
    double-count throughput.
    """
    rows = [d for d in deliveries if d[0] >= start and (end is None or d[0] < end)]
    if end is None:
        end = max((d[0] for d in rows), default=start)
    duration = max(end - start, 1e-9)
    seen = set()
    unique_rows = []
    duplicates = 0
    for row in rows:
        if row[1] in seen:
            duplicates += 1
            continue
        seen.add(row[1])
        unique_rows.append(row)
    if not unique_rows:
        return FlowStats(flow_id, label, duration, 0, 0, 0.0,
                         float("nan"), float("nan"), float("nan"), float("nan"),
                         duplicate_packets=duplicates)
    delays = np.array([d[2] for d in unique_rows])
    size = sum(d[3] for d in unique_rows)
    return FlowStats(
        flow_id=flow_id,
        label=label,
        duration=duration,
        bytes_received=size,
        packets_received=len(unique_rows),
        throughput_bps=size * 8.0 / duration,
        mean_delay=float(delays.mean()),
        median_delay=float(np.median(delays)),
        p95_delay=float(np.percentile(delays, 95)),
        max_delay=float(delays.max()),
        duplicate_packets=duplicates,
    )


def windowed_throughput(deliveries: Sequence[Delivery], window: float,
                        start: float = 0.0,
                        end: Optional[float] = None
                        ) -> Tuple[np.ndarray, np.ndarray]:
    """Throughput binned into fixed windows (Fig 4's 100 ms / 20 ms views).

    Returns ``(window_start_times, throughput_bps)``.
    """
    if window <= 0:
        raise ValueError("window must be positive")
    if not deliveries:
        return np.empty(0), np.empty(0)
    times = np.array([d[0] for d in deliveries])
    sizes = np.array([d[3] for d in deliveries], dtype=float)
    if end is None:
        end = float(times.max()) + window
    n_bins = max(1, int(np.ceil((end - start) / window)))
    edges = start + np.arange(n_bins + 1) * window
    totals, _ = np.histogram(times, bins=edges, weights=sizes)
    return edges[:-1], totals * 8.0 / window


def windowed_delay(deliveries: Sequence[Delivery], window: float,
                   start: float = 0.0, end: Optional[float] = None,
                   agg: str = "mean") -> Tuple[np.ndarray, np.ndarray]:
    """Per-window delay aggregate; ``agg`` is 'mean', 'max' or 'p95'."""
    if window <= 0:
        raise ValueError("window must be positive")
    if agg not in ("mean", "max", "p95"):
        raise ValueError(f"unknown aggregate {agg!r}")
    if not deliveries:
        return np.empty(0), np.empty(0)
    times = np.array([d[0] for d in deliveries])
    delays = np.array([d[2] for d in deliveries])
    if end is None:
        end = float(times.max()) + window
    n_bins = max(1, int(np.ceil((end - start) / window)))
    edges = start + np.arange(n_bins + 1) * window
    idx = np.clip(((times - start) / window).astype(int), 0, n_bins - 1)
    out = np.full(n_bins, np.nan)
    for b in range(n_bins):
        chunk = delays[idx == b]
        if chunk.size == 0:
            continue
        if agg == "mean":
            out[b] = chunk.mean()
        elif agg == "max":
            out[b] = chunk.max()
        else:
            out[b] = np.percentile(chunk, 95)
    return edges[:-1], out


def delay_cdf(deliveries: Sequence[Delivery],
              start: float = 0.0) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of per-packet delay."""
    delays = np.sort([d[2] for d in deliveries if d[0] >= start])
    if len(delays) == 0:
        return np.empty(0), np.empty(0)
    fractions = np.arange(1, len(delays) + 1) / len(delays)
    return np.asarray(delays), fractions


def aggregate_stats(stats: Iterable[FlowStats]) -> dict:
    """Mean throughput/delay across flows (the paper's averaged points)."""
    items = list(stats)
    if not items:
        return {"flows": 0}
    return {
        "flows": len(items),
        "mean_throughput_mbps": float(np.mean([s.throughput_mbps for s in items])),
        "total_throughput_mbps": float(np.sum([s.throughput_mbps for s in items])),
        "mean_delay_ms": float(np.nanmean([s.mean_delay_ms for s in items])),
        "max_p95_delay_ms": float(np.nanmax([s.p95_delay for s in items]) * 1e3),
        "throughput_std_mbps": float(np.std([s.throughput_mbps for s in items])),
    }
