"""TCP Cubic (Ha, Rhee, Xu 2008) — the paper's main TCP comparison point.

Window growth in congestion avoidance follows the cubic function

    W_cubic(t) = C · (t − K)^3 + W_max,     K = ∛(W_max · β_decrease / C)

anchored at the window before the last loss (``W_max``), with the standard
TCP-friendliness lower bound (estimated Reno window) and fast convergence
(W_max is deflated when a loss arrives before the previous W_max was
reached).  Loss response is ×0.7 rather than Reno's ×0.5.  Defaults match
the Linux implementation the paper uses (C = 0.4, β = 0.7).
"""

from __future__ import annotations

from typing import Optional

from .base import TcpSender


class CubicSender(TcpSender):
    """TCP Cubic congestion avoidance on the shared TCP skeleton."""

    name = "cubic"

    def __init__(self, flow_id: int, c: float = 0.4, beta: float = 0.7,
                 fast_convergence: bool = True, hystart: bool = True,
                 **kwargs):
        super().__init__(flow_id, **kwargs)
        if c <= 0:
            raise ValueError("C must be positive")
        if not 0 < beta < 1:
            raise ValueError("beta must be in (0, 1)")
        self.c = c
        self.beta = beta
        self.fast_convergence = fast_convergence
        self.hystart = hystart
        self.w_max: float = 0.0
        self._epoch_start: Optional[float] = None
        self._k: float = 0.0
        self._w_est: float = 0.0  # TCP-friendly (Reno) estimate
        self._ack_count = 0
        self._min_rtt: Optional[float] = None

    def on_rtt_sample(self, rtt: float) -> None:
        """HyStart delay-increase heuristic: leave slow start before the
        queue overflows, as the Linux Cubic the paper runs does."""
        if self._min_rtt is None or rtt < self._min_rtt:
            self._min_rtt = rtt
        if not self.hystart or not self.in_slow_start:
            return
        threshold = self._min_rtt + max(0.004, self._min_rtt / 8.0)
        if rtt > threshold and self.cwnd >= 16:
            self.ssthresh = min(self.ssthresh, self.cwnd)

    # ------------------------------------------------------------------
    def on_loss_event(self) -> None:
        if self.fast_convergence and self.cwnd < self.w_max:
            # Loss arrived before regaining the previous plateau: release
            # bandwidth faster so competing flows converge.
            self.w_max = self.cwnd * (1.0 + self.beta) / 2.0
        else:
            self.w_max = self.cwnd
        self._epoch_start = None

    def ssthresh_on_loss(self) -> float:
        return max(2.0, self.cwnd * self.beta)

    def ca_increment(self, newly_acked: int) -> None:
        if self._epoch_start is None:
            self._begin_epoch()
        t = self.now - self._epoch_start
        rtt = self.srtt if self.srtt is not None else 0.1
        target = self.c * (t + rtt - self._k) ** 3 + self.w_max
        # TCP-friendly region: track the window Reno would have.
        self._ack_count += newly_acked
        self._w_est = (self.w_max * self.beta
                       + 3.0 * (1.0 - self.beta) / (1.0 + self.beta)
                       * self._ack_count / max(self.cwnd, 1.0))
        target = max(target, self._w_est)
        if target > self.cwnd:
            # Spread the move toward the target over roughly one RTT.
            self.cwnd += (target - self.cwnd) / max(self.cwnd, 1.0) * newly_acked
        else:
            # Plateau region: creep forward very slowly.
            self.cwnd += 0.01 * newly_acked / max(self.cwnd, 1.0)

    def _begin_epoch(self) -> None:
        self._epoch_start = self.now
        self._ack_count = 0
        if self.w_max > self.cwnd:
            self._k = ((self.w_max - self.cwnd) / self.c) ** (1.0 / 3.0)
        else:
            self._k = 0.0
            self.w_max = self.cwnd
