"""TCP NewReno (RFC 6582).

The base class already implements the NewReno recovery machinery (fast
retransmit on three duplicate ACKs, partial-ACK retransmission, window
deflation); this subclass pins the classic Reno AIMD parameters: additive
increase of one segment per RTT and multiplicative decrease of one half.
The paper runs NewReno "with default parameters according to ... Windows 7
configurations" as one of its two loss-based baselines.
"""

from __future__ import annotations

from .base import TcpSender


class NewRenoSender(TcpSender):
    """Classic AIMD: +1 MSS per RTT, ×0.5 on loss."""

    name = "newreno"

    def ca_increment(self, newly_acked: int) -> None:
        self.cwnd += newly_acked / max(self.cwnd, 1.0)

    def ssthresh_on_loss(self) -> float:
        # min(FlightSize, cwnd): see TcpSender.ssthresh_on_loss — plain
        # FlightSize/2 inflates the window when a burst loss leaves more
        # packets stranded in the network than the collapsed cwnd.
        return max(2.0, min(self.flight(), self.cwnd) / 2.0)
