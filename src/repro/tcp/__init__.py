"""Loss- and delay-based legacy TCP baselines on the shared simulator.

The paper's direct comparison points — NewReno (RFC 6582 recovery, Reno
AIMD), Cubic (Linux default) and Vegas (classic delay-based control) —
plus the other §2-cited legacy designs: LEDBAT (RFC 6817 background
transport), Compound TCP (Windows) and Binomial congestion control.
All are packet-level models over the :mod:`repro.netsim` substrate.
"""

from .base import DUPACK_THRESHOLD, INITIAL_WINDOW, TcpReceiver, TcpSender
from .binomial import BinomialSender
from .compound import CompoundSender
from .cubic import CubicSender
from .ledbat import LedbatSender
from .newreno import NewRenoSender
from .vegas import VegasSender

__all__ = [
    "BinomialSender",
    "CompoundSender",
    "CubicSender",
    "DUPACK_THRESHOLD",
    "INITIAL_WINDOW",
    "LedbatSender",
    "NewRenoSender",
    "TcpReceiver",
    "TcpSender",
    "VegasSender",
]
