"""Compound TCP (Tan, Song, Zhang, Sridharan — INFOCOM 2006).

Cited by the paper (§2, [29]) as one of the two stacks "most current
operating systems leverage" (it shipped in Windows).  Compound maintains
two components::

    window = loss_window + delay_window

The loss window follows Reno AIMD; the delay window grows like a
scalable/HSTCP term while the estimated queue backlog

    diff = cwnd · (RTT − baseRTT) / RTT

stays below a threshold γ, and collapses by ζ·diff once backlog forms —
so Compound is fast on empty pipes but regresses to Reno under queueing.
Parameters follow the paper's defaults: α=0.125, β=0.5, k=0.75, γ=30.
"""

from __future__ import annotations

from typing import Optional

from .base import TcpSender


class CompoundSender(TcpSender):
    """Compound TCP: Reno loss window plus a scalable delay window."""

    name = "compound"

    def __init__(self, flow_id: int, alpha: float = 0.125, beta: float = 0.5,
                 k: float = 0.75, gamma: float = 30.0, zeta: float = 1.0,
                 **kwargs):
        super().__init__(flow_id, **kwargs)
        if not 0 < alpha:
            raise ValueError("alpha must be positive")
        if not 0 < beta < 1:
            raise ValueError("beta must be in (0, 1)")
        if not 0 < k < 1:
            raise ValueError("k must be in (0, 1)")
        self.alpha = alpha
        self.beta = beta
        self.k = k
        self.gamma = gamma
        self.zeta = zeta
        self.dwnd = 0.0                 # delay window component
        self.base_rtt: Optional[float] = None
        self._min_rtt_round: Optional[float] = None
        self._round_end = 0

    # ------------------------------------------------------------------
    def on_rtt_sample(self, rtt: float) -> None:
        if self.base_rtt is None or rtt < self.base_rtt:
            self.base_rtt = rtt
        if self._min_rtt_round is None or rtt < self._min_rtt_round:
            self._min_rtt_round = rtt

    def _diff(self) -> Optional[float]:
        rtt = self._min_rtt_round
        if rtt is None or self.base_rtt is None or rtt <= 0:
            return None
        return (self.cwnd + self.dwnd) * (rtt - self.base_rtt) / rtt

    def _total_window(self) -> float:
        return self.cwnd + self.dwnd

    def _fill_window(self) -> None:
        # Sending is governed by the compound window, not cwnd alone.
        limit = min(self.snd_una + int(self._total_window()),
                    self._data_limit())
        while self.running and self.snd_nxt < limit:
            self._transmit(self.snd_nxt, retransmission=False)
            self.snd_nxt += 1
            limit = min(self.snd_una + int(self._total_window()),
                        self._data_limit())

    # ------------------------------------------------------------------
    def ca_increment(self, newly_acked: int) -> None:
        # Loss component: Reno additive increase on the compound window.
        self.cwnd += newly_acked / max(self._total_window(), 1.0)
        # Delay component: once per RTT round.
        if self.snd_una < self._round_end:
            return
        self._round_end = self.snd_nxt
        diff = self._diff()
        self._min_rtt_round = None
        if diff is None:
            return
        win = self._total_window()
        if diff < self.gamma:
            # Scalable growth: α·win^k, minus the loss window's own +1.
            increment = max(0.0, self.alpha * (win ** self.k) - 1.0)
            self.dwnd += increment
        else:
            self.dwnd = max(0.0, self.dwnd - self.zeta * diff)

    def ssthresh_on_loss(self) -> float:
        return max(2.0, self._total_window() * (1.0 - self.beta))

    def on_loss_event(self) -> None:
        # The delay window also multiplies down on loss.
        self.dwnd = max(0.0, self.dwnd * (1.0 - self.beta))
