"""TCP Vegas (Brakmo & Peterson 1994) — the delay-based legacy baseline.

Vegas estimates the backlog it keeps in the bottleneck queue as

    diff = cwnd · (RTT − baseRTT) / RTT        [packets]

once per RTT and nudges the window to hold ``alpha ≤ diff ≤ beta``
(defaults 2 and 4 packets).  Slow start doubles only every other RTT and
exits once ``diff`` exceeds ``gamma``.  The paper cites Vegas as the
inspiration for delay-based control and includes it in the real-world
macro comparison (Fig 8), where its single-queue assumptions break down on
bursty cellular links.
"""

from __future__ import annotations

from typing import Optional

from .base import TcpSender


class VegasSender(TcpSender):
    """Vegas diff-based congestion avoidance."""

    name = "vegas"

    def __init__(self, flow_id: int, alpha: float = 2.0, beta: float = 4.0,
                 gamma: float = 1.0, **kwargs):
        super().__init__(flow_id, **kwargs)
        if not 0 < alpha <= beta:
            raise ValueError("need 0 < alpha <= beta")
        self.alpha = alpha
        self.beta = beta
        self.gamma = gamma
        self.base_rtt: Optional[float] = None
        self._min_rtt_round: Optional[float] = None
        self._round_end = 0
        self._ss_grow_this_round = True

    # ------------------------------------------------------------------
    def on_rtt_sample(self, rtt: float) -> None:
        if self.base_rtt is None or rtt < self.base_rtt:
            self.base_rtt = rtt
        if self._min_rtt_round is None or rtt < self._min_rtt_round:
            self._min_rtt_round = rtt

    def _diff(self) -> Optional[float]:
        rtt = self._min_rtt_round
        if rtt is None or self.base_rtt is None or rtt <= 0:
            return None
        return self.cwnd * (rtt - self.base_rtt) / rtt

    def slow_start_increment(self, newly_acked: int) -> None:
        # Vegas doubles every *other* RTT so the diff signal has time to
        # form, and leaves slow start on queue build-up, not loss.
        if self.snd_una >= self._round_end:
            diff = self._diff()
            if diff is not None and diff > self.gamma:
                self.ssthresh = min(self.ssthresh, self.cwnd)
                self._end_round()
                return
            self._ss_grow_this_round = not self._ss_grow_this_round
            self._end_round()
        if self._ss_grow_this_round:
            self.cwnd += newly_acked

    def ca_increment(self, newly_acked: int) -> None:
        if self.snd_una < self._round_end:
            return
        diff = self._diff()
        if diff is not None:
            if diff < self.alpha:
                self.cwnd += 1.0
            elif diff > self.beta:
                self.cwnd = max(2.0, self.cwnd - 1.0)
        self._end_round()

    def _end_round(self) -> None:
        self._round_end = self.snd_nxt
        self._min_rtt_round = None

    def ssthresh_on_loss(self) -> float:
        # min(FlightSize, cwnd): see TcpSender.ssthresh_on_loss — plain
        # FlightSize/2 inflates the window when a burst loss leaves more
        # packets stranded in the network than the collapsed cwnd.
        return max(2.0, min(self.flight(), self.cwnd) / 2.0)
