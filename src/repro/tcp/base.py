"""Packet-level TCP machinery shared by the NewReno/Cubic/Vegas baselines.

Implements the loss-based congestion-control skeleton the paper compares
against: slow start, congestion avoidance (increment supplied by the
subclass), duplicate-ACK fast retransmit, fast recovery, and an RFC 6298
retransmission timeout with exponential backoff.  Sequence numbers count
packets (one MSS each), as is conventional for simulator TCP models.

Recovery runs in one of two modes:

* **SACK-emulated** (default) — every acknowledgement echoes the sequence
  of the data packet that triggered it, which is exactly the information a
  SACK block carries at packet granularity.  During recovery the sender
  keeps a scoreboard of SACKed sequences and retransmits the remaining
  holes under pipe control, repairing a multi-packet loss burst in roughly
  one round trip — matching the Linux/Windows stacks the paper benchmarks,
  which all negotiate SACK.
* **NewReno partial-ACK** (``sack=False``) — one hole repaired per partial
  acknowledgement (RFC 6582), kept for ablation.

The matching :class:`TcpReceiver` returns one cumulative acknowledgement
per data packet (no delayed ACKs — the paper's OPNET models ACK every
packet) carrying ``ack_seq`` = next expected sequence.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from ..netsim.engine import Event
from ..netsim.flow import ReceiverProtocol, SenderProtocol
from ..netsim.packet import MTU_BYTES, Packet

INITIAL_WINDOW = 2.0
DUPACK_THRESHOLD = 3


class TcpReceiver(ReceiverProtocol):
    """Cumulative-ACK receiver with out-of-order buffering."""

    def __init__(self, flow_id: int):
        super().__init__(flow_id)
        self.next_expected = 0
        self._out_of_order: Set[int] = set()

    def on_data(self, packet: Packet) -> None:
        if packet.seq >= self.next_expected and packet.seq not in self._out_of_order:
            self._record(packet)
        if packet.seq == self.next_expected:
            self.next_expected += 1
            while self.next_expected in self._out_of_order:
                self._out_of_order.discard(self.next_expected)
                self.next_expected += 1
        elif packet.seq > self.next_expected:
            self._out_of_order.add(packet.seq)
        self.send_ack(packet.make_ack(self.now, ack_seq=self.next_expected,
                                      pool=self.ack_pool))


class TcpSender(SenderProtocol):
    """Base loss-based TCP sender (full-buffer source).

    Subclasses override:

    * :meth:`ca_increment` — congestion-avoidance growth per new ACK;
    * :meth:`ssthresh_on_loss` — multiplicative-decrease target;
    * optionally :meth:`on_rtt_sample`, :meth:`on_loss_event` for extra
      state (Cubic's epoch, Vegas's baseRTT).
    """

    #: Human-readable variant name, overridden by subclasses.
    name = "tcp"

    def __init__(self, flow_id: int, mss: int = MTU_BYTES,
                 initial_ssthresh: float = 1e9, sack: bool = True,
                 transfer_bytes: Optional[int] = None):
        super().__init__(flow_id)
        self.mss = mss
        self.sack = sack
        if transfer_bytes is not None and transfer_bytes <= 0:
            raise ValueError("transfer_bytes must be positive")
        self.transfer_packets: Optional[int] = None
        if transfer_bytes is not None:
            self.transfer_packets = max(1, -(-transfer_bytes // mss))
        self.completion_time: Optional[float] = None
        self.cwnd: float = INITIAL_WINDOW
        self.ssthresh: float = initial_ssthresh
        self.snd_una = 0          # lowest unacknowledged sequence
        self.snd_nxt = 0          # next sequence to transmit
        self._dupacks = 0
        self._in_fast_recovery = False
        self._recover = 0         # highest seq sent when the loss hit
        self._sacked: Set[int] = set()
        self._rexmit_done: Set[int] = set()
        self._sent_times: Dict[int, float] = {}
        self._retransmitted: Set[int] = set()
        # RFC 6298 state
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = 1.0
        self.min_rto = 0.2
        self._rto_event: Optional[Event] = None
        self._backoff = 1.0
        # statistics
        self.fast_retransmits = 0
        self.timeouts = 0
        self.retransmissions = 0

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------
    def ca_increment(self, newly_acked: int) -> None:
        """Congestion-avoidance growth; default is Reno's 1/cwnd per ACK."""
        self.cwnd += newly_acked / max(self.cwnd, 1.0)

    def ssthresh_on_loss(self) -> float:
        """Multiplicative decrease target; default is Reno's half.

        Halves the *usable* window ``min(FlightSize, cwnd)`` rather than
        RFC 5681's plain FlightSize: after a burst loss or blackout the
        stale in-network backlog can dwarf an already-collapsed cwnd,
        and FlightSize/2 would then *raise* the window on a loss event.
        """
        return max(2.0, min(self.flight(), self.cwnd) / 2.0)

    def on_rtt_sample(self, rtt: float) -> None:
        """Extra per-RTT-sample processing for subclasses."""

    def on_loss_event(self) -> None:
        """Called once per loss event (fast retransmit or timeout)."""

    def slow_start_increment(self, newly_acked: int) -> None:
        """Slow-start growth; default doubles per RTT."""
        self.cwnd += newly_acked

    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        self._fill_window()
        self._arm_rto()

    def stop(self) -> None:
        super().stop()
        if self._rto_event is not None:
            self._rto_event.cancel()

    def flight(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh and not self._in_fast_recovery

    # ------------------------------------------------------------------
    # Transmission
    # ------------------------------------------------------------------
    def _data_limit(self) -> float:
        if self.transfer_packets is None:
            return float("inf")
        return self.transfer_packets

    def _fill_window(self) -> None:
        limit = min(self.snd_una + int(self.cwnd), self._data_limit())
        while self.running and self.snd_nxt < limit:
            self._transmit(self.snd_nxt, retransmission=False)
            self.snd_nxt += 1
            limit = min(self.snd_una + int(self.cwnd), self._data_limit())

    def _transmit(self, seq: int, retransmission: bool) -> None:
        if retransmission:
            self.retransmissions += 1
            self._retransmitted.add(seq)
        else:
            self._sent_times[seq] = self.now
        packet = Packet(flow_id=self.flow_id, seq=seq, size=self.mss,
                        sent_time=self.now, window_at_send=self.cwnd,
                        retransmission=retransmission)
        self.send(packet)

    # ------------------------------------------------------------------
    # Acknowledgement processing
    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        if not packet.is_ack or not self.running:
            return
        ack = packet.ack_seq
        if self.sack and packet.seq >= ack:
            # The echoed trigger sequence above the cumulative point is the
            # packet-granularity equivalent of a SACK block.
            self._sacked.add(packet.seq)
        if ack > self.snd_una:
            self._handle_new_ack(ack, packet)
        elif ack == self.snd_una and self.flight() > 0:
            self._handle_dupack()
        if self._in_fast_recovery and self.sack:
            self._sack_retransmit()
        if not self._in_fast_recovery or self.sack:
            self._fill_window_recovery_aware()
        # An ACK that emptied the flight disarms the timer above, but the
        # window refill just put new segments in the air.  Without a
        # timer those segments have no loss backstop: if the whole burst
        # dies (a blackout, a corruption storm) no ACK ever returns and
        # the sender deadlocks silently.
        if self._rto_event is None and self.flight() > 0:
            self._arm_rto()
        if self.observers:
            self.notify("on_window", time=self.now, window=self.cwnd,
                        ssthresh=self.ssthresh, flight=self.flight())

    def _handle_new_ack(self, ack: int, packet: Packet) -> None:
        newly_acked = ack - self.snd_una
        # RTT sampling (Karn: never from retransmitted segments).
        trigger = ack - 1
        sent = self._sent_times.get(trigger)
        if sent is not None and trigger not in self._retransmitted:
            self._rtt_sample(self.now - sent)
        for seq in range(self.snd_una, ack):
            self._sent_times.pop(seq, None)
            self._retransmitted.discard(seq)
            self._sacked.discard(seq)
            self._rexmit_done.discard(seq)
        self.snd_una = ack
        self._backoff = 1.0
        self._arm_rto()
        if (self.transfer_packets is not None
                and self.completion_time is None
                and self.snd_una >= self.transfer_packets):
            self.completion_time = self.now
            self.stop()
            return

        if self._in_fast_recovery:
            if ack > self._recover:
                # Full acknowledgement: leave recovery, deflate.
                self._in_fast_recovery = False
                self._dupacks = 0
                self.cwnd = self.ssthresh
                self._sacked.clear()
                self._rexmit_done.clear()
            elif not self.sack:
                # Partial acknowledgement (RFC 6582): retransmit next hole,
                # deflate by the amount acknowledged.
                self._transmit(self.snd_una, retransmission=True)
                self.cwnd = max(self.ssthresh, self.cwnd - newly_acked + 1)
            return

        self._dupacks = 0
        if self.in_slow_start:
            self.slow_start_increment(newly_acked)
        else:
            self.ca_increment(newly_acked)

    def _handle_dupack(self) -> None:
        self._dupacks += 1
        if self._in_fast_recovery:
            if not self.sack:
                self.cwnd += 1.0  # NewReno window inflation per dupack
            return
        if self._dupacks >= DUPACK_THRESHOLD:
            self._enter_fast_recovery()

    def _enter_fast_recovery(self) -> None:
        self.fast_retransmits += 1
        w_before = self.cwnd
        self.on_loss_event()
        self.ssthresh = self.ssthresh_on_loss()
        if self.observers:
            self.notify("on_loss", time=self.now, w_loss=w_before,
                        w_after=self.ssthresh, kind="fast_retransmit")
        self._recover = self.snd_nxt - 1
        self._in_fast_recovery = True
        self._rexmit_done.clear()
        if self.sack:
            self.cwnd = self.ssthresh
            self._sack_retransmit()
        else:
            self.cwnd = self.ssthresh + DUPACK_THRESHOLD
            self._transmit(self.snd_una, retransmission=True)
        self._arm_rto()

    # ------------------------------------------------------------------
    # SACK-emulated recovery (pipe control)
    # ------------------------------------------------------------------
    def _pipe(self) -> int:
        """Packets still in the network during recovery (RFC 6675 style).

        A hole with roughly a dupack-threshold's worth of SACKed packets
        above it is deemed lost and leaves the pipe; holes we have already
        retransmitted are back in the pipe until (S)ACKed.
        """
        if not self._sacked:
            return self.flight()
        hi = max(self._sacked)
        lost = 0
        for seq in range(self.snd_una, max(self.snd_una, hi - DUPACK_THRESHOLD + 1)):
            if seq not in self._sacked and seq not in self._rexmit_done:
                lost += 1
        return max(0, self.flight() - len(self._sacked) - lost)

    def _sack_retransmit(self) -> None:
        """Retransmit known holes up to the congestion window."""
        budget = int(self.cwnd) - self._pipe()
        seq = self.snd_una
        while budget > 0 and seq <= self._recover:
            if seq not in self._sacked and seq not in self._rexmit_done:
                self._transmit(seq, retransmission=True)
                self._rexmit_done.add(seq)
                budget -= 1
            seq += 1

    def _fill_window_recovery_aware(self) -> None:
        if not self._in_fast_recovery:
            self._fill_window()
            return
        # During SACK recovery, new data is pipe-limited.
        while (self.running and self._pipe() < int(self.cwnd)
               and self.snd_nxt < self._data_limit()):
            self._transmit(self.snd_nxt, retransmission=False)
            self.snd_nxt += 1

    # ------------------------------------------------------------------
    # RTT estimation & retransmission timeout (RFC 6298)
    # ------------------------------------------------------------------
    def _rtt_sample(self, rtt: float) -> None:
        if rtt <= 0:
            return
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - rtt)
            self.srtt = 0.875 * self.srtt + 0.125 * rtt
        self.rto = max(self.min_rto, self.srtt + 4.0 * self.rttvar)
        self.on_rtt_sample(rtt)

    def _arm_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
        if self.flight() <= 0:
            self._rto_event = None
            return
        self._rto_event = self.sim.schedule(self.rto * self._backoff,
                                            self._on_rto)

    def _on_rto(self) -> None:
        if not self.running or self.flight() <= 0:
            return
        self.timeouts += 1
        w_before = self.cwnd
        self.on_loss_event()
        self.ssthresh = self.ssthresh_on_loss()
        self.cwnd = 1.0
        if self.observers:
            self.notify("on_loss", time=self.now, w_loss=w_before,
                        w_after=self.cwnd, kind="rto")
        self._dupacks = 0
        self._in_fast_recovery = False
        self._sacked.clear()
        self._rexmit_done.clear()
        self._backoff = min(self._backoff * 2.0, 64.0)
        self._transmit(self.snd_una, retransmission=True)
        # Go-back-N: everything past the retransmitted segment is treated
        # as lost and will be resent as the window regrows.  Without the
        # rewind, flight() stays inflated by the lost tail and the sender
        # trickles one segment per RTO forever after a blackout.
        self.snd_nxt = self.snd_una + 1
        self._arm_rto()
