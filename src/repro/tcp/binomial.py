"""Binomial congestion control (Bansal & Balakrishnan, INFOCOM 2001).

Cited by the paper (§2, [2]).  Generalises AIMD with two exponents::

    increase:  cwnd += alpha / cwnd^k        per RTT
    decrease:  cwnd -= beta  · cwnd^l        on loss

(k=0, l=1) is AIMD; (k=1, l=0) is IIAD (inverse-increase /
additive-decrease); (k=l=0.5) is SQRT.  The non-AIMD members reduce
less than multiplicatively on loss, which made them attractive for
streaming media — and makes them an instructive baseline on stochastic-
loss cellular links, where their gentler backoff partially masks the
random-loss penalty that cripples AIMD.
"""

from __future__ import annotations

from .base import TcpSender


class BinomialSender(TcpSender):
    """Binomial (k, l) window control; defaults to SQRT (k=l=0.5)."""

    name = "binomial"

    def __init__(self, flow_id: int, k: float = 0.5, l: float = 0.5,
                 alpha: float = 1.0, beta: float = 0.5, **kwargs):
        super().__init__(flow_id, **kwargs)
        if k < 0 or l < 0:
            raise ValueError("exponents must be non-negative")
        if k + l < 1:
            # k + l >= 1 is the TCP-friendliness condition of the paper.
            raise ValueError("need k + l >= 1 for TCP-friendliness")
        if alpha <= 0 or not 0 < beta <= 1:
            raise ValueError("need alpha > 0 and 0 < beta <= 1")
        self.k = k
        self.l = l
        self.alpha = alpha
        self.beta = beta

    @classmethod
    def aimd(cls, flow_id: int, **kwargs) -> "BinomialSender":
        """(k=0, l=1): classic AIMD expressed in the binomial family."""
        return cls(flow_id, k=0.0, l=1.0, **kwargs)

    @classmethod
    def iiad(cls, flow_id: int, **kwargs) -> "BinomialSender":
        """(k=1, l=0): inverse increase, additive decrease."""
        return cls(flow_id, k=1.0, l=0.0, beta=1.0, **kwargs)

    @classmethod
    def sqrt(cls, flow_id: int, **kwargs) -> "BinomialSender":
        """(k=l=0.5): the SQRT rule."""
        return cls(flow_id, k=0.5, l=0.5, **kwargs)

    # ------------------------------------------------------------------
    def ca_increment(self, newly_acked: int) -> None:
        w = max(self.cwnd, 1.0)
        self.cwnd += self.alpha * newly_acked / (w ** self.k * w)

    def ssthresh_on_loss(self) -> float:
        w = max(self.cwnd, 1.0)
        return max(2.0, w - self.beta * (w ** self.l))
