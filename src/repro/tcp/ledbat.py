"""LEDBAT — Low Extra Delay Background Transport (RFC 6817).

Cited by the paper (§2, [27]) among the legacy delay-based designs that
"are not directly suited for cellular network conditions".  LEDBAT aims
to keep one-way queueing delay at a fixed ``TARGET`` (100 ms) and yields
to any other traffic: the window moves proportionally to the gap between
the measured queueing delay and the target,

    cwnd += GAIN · (TARGET − queuing_delay) / TARGET · acked / cwnd

with standard halving on loss.  Including it lets the reproduction show
*why* a fixed delay target underperforms Verus's learned profile on a
bursty cell: the controller chases a constant that the channel's burst
structure crosses hundreds of times per minute.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .base import TcpSender


class LedbatSender(TcpSender):
    """LEDBAT window control on the shared TCP skeleton.

    One-way-delay is approximated by RTT minus the base RTT (accurate in
    the simulator, where the reverse path is uncongested).  The base
    delay is the minimum over the last ``base_history`` one-minute
    windows per RFC 6817 §4.2, so route changes age out.
    """

    name = "ledbat"

    def __init__(self, flow_id: int, target: float = 0.100,
                 gain: float = 1.0, base_history: int = 10, **kwargs):
        super().__init__(flow_id, **kwargs)
        if target <= 0:
            raise ValueError("target must be positive")
        if gain <= 0:
            raise ValueError("gain must be positive")
        self.target = target
        self.gain = gain
        self.base_history = base_history
        self._base_windows: Deque[Tuple[int, float]] = deque()
        self._current_minute: Optional[int] = None

    # ------------------------------------------------------------------
    def _update_base(self, rtt: float) -> None:
        minute = int(self.now / 60.0)
        if self._current_minute != minute:
            self._current_minute = minute
            self._base_windows.append((minute, rtt))
            while len(self._base_windows) > self.base_history:
                self._base_windows.popleft()
        else:
            last_minute, value = self._base_windows[-1]
            if rtt < value:
                self._base_windows[-1] = (last_minute, rtt)

    def base_delay(self) -> Optional[float]:
        if not self._base_windows:
            return None
        return min(value for _, value in self._base_windows)

    # ------------------------------------------------------------------
    def on_rtt_sample(self, rtt: float) -> None:
        self._update_base(rtt)

    def ca_increment(self, newly_acked: int) -> None:
        base = self.base_delay()
        if base is None or self.srtt is None:
            self.cwnd += newly_acked / max(self.cwnd, 1.0)
            return
        queuing_delay = max(0.0, self.srtt - base)
        off_target = (self.target - queuing_delay) / self.target
        self.cwnd += (self.gain * off_target * newly_acked
                      / max(self.cwnd, 1.0))
        self.cwnd = max(2.0, self.cwnd)

    def slow_start_increment(self, newly_acked: int) -> None:
        # RFC 6817 permits slow start but requires leaving it once the
        # delay objective is violated.
        base = self.base_delay()
        if (base is not None and self.srtt is not None
                and self.srtt - base > self.target):
            self.ssthresh = min(self.ssthresh, self.cwnd)
            return
        self.cwnd += newly_acked

    def ssthresh_on_loss(self) -> float:
        return max(2.0, self.cwnd / 2.0)
