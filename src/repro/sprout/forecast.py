"""Stochastic link-rate forecasting — the Sprout baseline's engine.

Re-implements the control law of Sprout (Winstein, Sivaraman,
Balakrishnan, NSDI'13), the state-of-the-art cellular protocol the paper
compares against.  The receiver models packet deliveries per 20 ms tick as
a Poisson process whose rate λ drifts (Brownian motion in the log domain),
maintains a discretised Bayesian belief over λ, and produces a *cautious
forecast*: the 5th-percentile cumulative number of deliverable packets
over the next several ticks.  The sender keeps no more packets in flight
than the cautious forecast predicts can drain within the 100 ms target
delay, which yields Sprout's signature low queueing delay — and its
conservatism on rapidly improving channels, which Fig 11 of the Verus
paper exploits.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

#: Sprout's tick length (seconds).
TICK_SECONDS = 0.020
#: Queueing-delay target (seconds): drain everything within 100 ms.
TARGET_DELAY = 0.100
#: Forecast risk quantile: plan for the 5th-percentile channel.
CAUTION_QUANTILE = 0.05


class RateBelief:
    """Discretised Bayesian belief over the per-tick delivery rate λ.

    The support is a log-spaced grid; evolution is a Gaussian random walk
    in log λ (approximating Sprout's Brownian-motion prior) implemented as
    a convolution over grid indices, and observations update the belief
    with the Poisson likelihood of the packet count seen in a tick.
    """

    def __init__(self, min_rate: float = 0.05, max_rate: float = 300.0,
                 bins: int = 192, evolve_sigma: float = 0.18):
        if not 0 < min_rate < max_rate:
            raise ValueError("need 0 < min_rate < max_rate")
        if bins < 8:
            raise ValueError("need at least 8 bins")
        if evolve_sigma <= 0:
            raise ValueError("evolve_sigma must be positive")
        self.log_rates = np.linspace(math.log(min_rate), math.log(max_rate), bins)
        self.rates = np.exp(self.log_rates)
        self.prob = np.full(bins, 1.0 / bins)
        step = self.log_rates[1] - self.log_rates[0]
        # Precomputed evolution kernel over grid indices.
        half_width = max(1, int(math.ceil(3 * evolve_sigma / step)))
        offsets = np.arange(-half_width, half_width + 1)
        kernel = np.exp(-0.5 * (offsets * step / evolve_sigma) ** 2)
        self._kernel = kernel / kernel.sum()
        self._log_rates_col = self.log_rates

    # ------------------------------------------------------------------
    def evolve(self) -> None:
        """One tick of Brownian drift: convolve the belief with the kernel."""
        self.prob = np.convolve(self.prob, self._kernel, mode="same")
        total = self.prob.sum()
        if total <= 0:
            self.prob = np.full_like(self.prob, 1.0 / self.prob.size)
        else:
            self.prob /= total

    def observe(self, packets: int, censored: bool = False) -> None:
        """Multiply in the likelihood of ``packets`` arrivals in one tick.

        ``censored=True`` means the tick drained everything offered (no
        queue built up), so the count is only a *lower bound* on what the
        link could have delivered: the likelihood becomes the Poisson tail
        P(X ≥ k) instead of the point mass P(X = k).  Without this
        distinction a self-clocked sender would keep confirming its own
        throttled sending rate and never ramp up.
        """
        if packets < 0:
            raise ValueError("packet count must be non-negative")
        if censored:
            if packets == 0:
                return  # "at least zero" carries no information
            from scipy.special import gammainc
            likelihood = gammainc(packets, self.rates)  # P(Poisson(λ) >= k)
        else:
            log_lik = (packets * self._log_rates_col - self.rates
                       - math.lgamma(packets + 1))
            log_lik -= log_lik.max()
            likelihood = np.exp(log_lik)
        posterior = self.prob * likelihood
        total = posterior.sum()
        if total <= 0:
            # Observation wildly outside the prior's support; reset flat.
            self.prob = np.full_like(self.prob, 1.0 / self.prob.size)
        else:
            self.prob = posterior / total

    def quantile(self, q: float) -> float:
        """Rate at the q-quantile of the belief."""
        if not 0 < q < 1:
            raise ValueError("quantile must be in (0, 1)")
        cdf = np.cumsum(self.prob)
        idx = int(np.searchsorted(cdf, q))
        return float(self.rates[min(idx, self.rates.size - 1)])

    def mean(self) -> float:
        return float(np.dot(self.prob, self.rates))


class SproutForecaster:
    """Tick-driven forecaster producing the cautious in-flight budget."""

    def __init__(self, tick: float = TICK_SECONDS,
                 target_delay: float = TARGET_DELAY,
                 quantile: float = CAUTION_QUANTILE,
                 rate_cap_bps: Optional[float] = None,
                 packet_bytes: int = 1400,
                 belief: Optional[RateBelief] = None):
        if tick <= 0 or target_delay <= 0:
            raise ValueError("tick and target_delay must be positive")
        self.tick = tick
        self.target_delay = target_delay
        self.quantile = quantile
        self.packet_bytes = packet_bytes
        self.rate_cap_bps = rate_cap_bps
        self.belief = belief if belief is not None else RateBelief()
        self.ticks_processed = 0

    # ------------------------------------------------------------------
    def on_tick(self, packets_this_tick: int, censored: bool = False) -> float:
        """Advance one tick with the observed arrivals; returns the budget.

        ``censored`` marks ticks during which the link drained everything
        offered (observation is a lower bound only — see
        :meth:`RateBelief.observe`).  The budget is the number of packets
        that may be outstanding such that, at the 5th-percentile channel
        rate, everything drains within the target delay.  The paper notes
        the Sprout *implementation* caps its bandwidth at 18 Mbps;
        ``rate_cap_bps`` reproduces that cap (set ``None`` to lift it, for
        sensitivity studies).
        """
        self.belief.evolve()
        self.belief.observe(packets_this_tick, censored=censored)
        self.ticks_processed += 1
        return self.cautious_budget()

    def cautious_budget(self) -> float:
        horizon_ticks = max(1, int(round(self.target_delay / self.tick)))
        cautious_rate = self.belief.quantile(self.quantile)
        cautious_rate = self._apply_cap(cautious_rate)
        # Widen uncertainty for each further look-ahead tick: evolve a copy
        # of the belief and re-take the quantile.
        budget = 0.0
        look = self.belief.prob.copy()
        kernel = self.belief._kernel
        rates = self.belief.rates
        for _ in range(horizon_ticks):
            look = np.convolve(look, kernel, mode="same")
            s = look.sum()
            if s > 0:
                look /= s
            cdf = np.cumsum(look)
            idx = int(np.searchsorted(cdf, self.quantile))
            rate = float(rates[min(idx, rates.size - 1)])
            budget += self._apply_cap(rate)
        return budget

    def _apply_cap(self, rate_packets_per_tick: float) -> float:
        if self.rate_cap_bps is None:
            return rate_packets_per_tick
        cap = self.rate_cap_bps * self.tick / (8.0 * self.packet_bytes)
        return min(rate_packets_per_tick, cap)
