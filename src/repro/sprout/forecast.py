"""Stochastic link-rate forecasting — the Sprout baseline's engine.

Re-implements the control law of Sprout (Winstein, Sivaraman,
Balakrishnan, NSDI'13), the state-of-the-art cellular protocol the paper
compares against.  The receiver models packet deliveries per 20 ms tick as
a Poisson process whose rate λ drifts (Brownian motion in the log domain),
maintains a discretised Bayesian belief over λ, and produces a *cautious
forecast*: the 5th-percentile cumulative number of deliverable packets
over the next several ticks.  The sender keeps no more packets in flight
than the cautious forecast predicts can drain within the 100 ms target
delay, which yields Sprout's signature low queueing delay — and its
conservatism on rapidly improving channels, which Fig 11 of the Verus
paper exploits.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

# np.convolve is a thin wrapper over the C correlate kernel with the
# second operand reversed; calling the kernel directly skips the wrapper
# (asarray coercion, operand-swap check, per-call reversal view) on the
# per-tick hot path while computing the exact same floats.  Mode 1 is
# "same".
try:
    from numpy._core.multiarray import correlate as _correlate
except ImportError:  # pragma: no cover - numpy < 2
    try:
        from numpy.core.multiarray import correlate as _correlate
    except ImportError:  # pragma: no cover - future layout change
        def _correlate(a, v, mode):
            return np.convolve(a, v[::-1], mode="same")

# ndarray.sum() funnels through numpy's _methods._sum wrapper into
# np.add.reduce; binding the reduce directly drops the wrapper from the
# per-tick hot path without changing the accumulation (same pairwise
# reduction, same floats).
_sum = np.add.reduce

# scipy is only needed for censored (tail-likelihood) observations; the
# import lives here so the per-tick censored branch doesn't re-run the
# import machinery, but its absence only bites if that branch is hit.
try:
    from scipy.special import gammainc as _gammainc
except ImportError:  # pragma: no cover - numpy-only environment
    _gammainc = None

#: Sprout's tick length (seconds).
TICK_SECONDS = 0.020
#: Queueing-delay target (seconds): drain everything within 100 ms.
TARGET_DELAY = 0.100
#: Forecast risk quantile: plan for the 5th-percentile channel.
CAUTION_QUANTILE = 0.05


class RateBelief:
    """Discretised Bayesian belief over the per-tick delivery rate λ.

    The support is a log-spaced grid; evolution is a Gaussian random walk
    in log λ (approximating Sprout's Brownian-motion prior) implemented as
    a convolution over grid indices, and observations update the belief
    with the Poisson likelihood of the packet count seen in a tick.
    """

    def __init__(self, min_rate: float = 0.05, max_rate: float = 300.0,
                 bins: int = 192, evolve_sigma: float = 0.18):
        if not 0 < min_rate < max_rate:
            raise ValueError("need 0 < min_rate < max_rate")
        if bins < 8:
            raise ValueError("need at least 8 bins")
        if evolve_sigma <= 0:
            raise ValueError("evolve_sigma must be positive")
        self.log_rates = np.linspace(math.log(min_rate), math.log(max_rate), bins)
        self.rates = np.exp(self.log_rates)
        self.prob = np.full(bins, 1.0 / bins)
        step = self.log_rates[1] - self.log_rates[0]
        # Precomputed evolution kernel over grid indices.
        half_width = max(1, int(math.ceil(3 * evolve_sigma / step)))
        offsets = np.arange(-half_width, half_width + 1)
        kernel = np.exp(-0.5 * (offsets * step / evolve_sigma) ** 2)
        self._kernel = kernel / kernel.sum()
        self._kernel_rev = np.ascontiguousarray(self._kernel[::-1])
        self._log_rates_col = self.log_rates
        # Likelihood rows (point mass and censored tail alike) are
        # deterministic in the packet count, so each distinct count is
        # built once and reused; rows are never mutated after insertion.
        self._lik_cache: dict = {}
        self._tail_cache: dict = {}
        self._posterior = np.empty(bins)
        # One-slot evolution memo: the forecaster's first horizon step
        # computes exactly normalize(correlate(prob, kernel)) — the same
        # array the next evolve() would rebuild.  The revision counter
        # ties the memo to the belief state it was derived from.
        self._rev = 0
        self._evolve_memo: Optional[tuple] = None

    # ------------------------------------------------------------------
    def evolve(self) -> None:
        """One tick of Brownian drift: convolve the belief with the kernel."""
        memo = self._evolve_memo
        if memo is not None:
            self._evolve_memo = None
            if memo[0] == self._rev:
                # The forecaster already evolved this exact belief state
                # for its first horizon step; adopt that private copy.
                self.prob = memo[1]
                self._rev += 1
                return
        self.prob = _correlate(self.prob, self._kernel_rev, 1)
        total = _sum(self.prob)
        if total <= 0:
            self.prob = np.full_like(self.prob, 1.0 / self.prob.size)
        else:
            self.prob /= total
        self._rev += 1

    def observe(self, packets: int, censored: bool = False) -> None:
        """Multiply in the likelihood of ``packets`` arrivals in one tick.

        ``censored=True`` means the tick drained everything offered (no
        queue built up), so the count is only a *lower bound* on what the
        link could have delivered: the likelihood becomes the Poisson tail
        P(X ≥ k) instead of the point mass P(X = k).  Without this
        distinction a self-clocked sender would keep confirming its own
        throttled sending rate and never ramp up.
        """
        if packets < 0:
            raise ValueError("packet count must be non-negative")
        if censored:
            if packets == 0:
                return  # "at least zero" carries no information
            likelihood = self._tail_cache.get(packets)
            if likelihood is None:
                if _gammainc is None:
                    raise ImportError(
                        "scipy is required for censored Sprout observations")
                # P(Poisson(λ) >= k)
                likelihood = _gammainc(packets, self.rates)
                if len(self._tail_cache) >= 4096:
                    self._tail_cache.clear()
                self._tail_cache[packets] = likelihood
        else:
            likelihood = self._lik_cache.get(packets)
            if likelihood is None:
                log_lik = (packets * self._log_rates_col - self.rates
                           - math.lgamma(packets + 1))
                log_lik -= log_lik.max()
                likelihood = np.exp(log_lik)
                if len(self._lik_cache) >= 4096:
                    self._lik_cache.clear()
                self._lik_cache[packets] = likelihood
        posterior = self._posterior
        np.multiply(self.prob, likelihood, out=posterior)
        total = _sum(posterior)
        if total <= 0:
            # Observation wildly outside the prior's support; reset flat.
            self.prob = np.full_like(self.prob, 1.0 / self.prob.size)
        else:
            np.divide(posterior, total, out=posterior)
            # Hand the scratch buffer over as the live belief and adopt
            # the superseded belief array as next tick's scratch.
            self._posterior = self.prob if self.prob.size == posterior.size \
                else np.empty(posterior.size)
            self.prob = posterior
        self._rev += 1

    def quantile(self, q: float) -> float:
        """Rate at the q-quantile of the belief."""
        if not 0 < q < 1:
            raise ValueError("quantile must be in (0, 1)")
        cdf = np.cumsum(self.prob)
        idx = int(np.searchsorted(cdf, q))
        return float(self.rates[min(idx, self.rates.size - 1)])

    def mean(self) -> float:
        return float(np.dot(self.prob, self.rates))


class SproutForecaster:
    """Tick-driven forecaster producing the cautious in-flight budget."""

    def __init__(self, tick: float = TICK_SECONDS,
                 target_delay: float = TARGET_DELAY,
                 quantile: float = CAUTION_QUANTILE,
                 rate_cap_bps: Optional[float] = None,
                 packet_bytes: int = 1400,
                 belief: Optional[RateBelief] = None):
        if tick <= 0 or target_delay <= 0:
            raise ValueError("tick and target_delay must be positive")
        self.tick = tick
        self.target_delay = target_delay
        self.quantile = quantile
        self.packet_bytes = packet_bytes
        self.rate_cap_bps = rate_cap_bps
        self.belief = belief if belief is not None else RateBelief()
        self.ticks_processed = 0
        # Scratch buffers for the batched horizon pass; (re)built lazily
        # so a swapped-in belief with a different grid size still works.
        self._horizon_buf: Optional[np.ndarray] = None
        self._horizon_cdf: Optional[np.ndarray] = None
        self._horizon_lt: Optional[np.ndarray] = None
        self._horizon_rows: Optional[list] = None
        self._rates_src: Optional[np.ndarray] = None
        self._rates_list: Optional[list] = None

    # ------------------------------------------------------------------
    def on_tick(self, packets_this_tick: int, censored: bool = False) -> float:
        """Advance one tick with the observed arrivals; returns the budget.

        ``censored`` marks ticks during which the link drained everything
        offered (observation is a lower bound only — see
        :meth:`RateBelief.observe`).  The budget is the number of packets
        that may be outstanding such that, at the 5th-percentile channel
        rate, everything drains within the target delay.  The paper notes
        the Sprout *implementation* caps its bandwidth at 18 Mbps;
        ``rate_cap_bps`` reproduces that cap (set ``None`` to lift it, for
        sensitivity studies).
        """
        self.belief.evolve()
        self.belief.observe(packets_this_tick, censored=censored)
        self.ticks_processed += 1
        return self.cautious_budget()

    def cautious_budget(self) -> float:
        horizon_ticks = max(1, int(round(self.target_delay / self.tick)))
        belief = self.belief
        rates = belief.rates
        buf = self._horizon_buf
        if buf is None or buf.shape != (horizon_ticks, rates.size):
            buf = self._horizon_buf = np.empty((horizon_ticks, rates.size))
            self._horizon_cdf = np.empty_like(buf)
            self._horizon_lt = np.empty(buf.shape, dtype=bool)
            self._horizon_rows = list(buf)
        # Widen uncertainty for each further look-ahead tick: evolve the
        # belief forward step by step (the per-step renormalisation does
        # not commute with convolution, so the chain stays sequential),
        # normalizing each horizon distribution into its buffer row …
        look = belief.prob
        kernel_rev = belief._kernel_rev
        div = np.divide
        first = True
        for row in self._horizon_rows:
            look = _correlate(look, kernel_rev, 1)
            s = _sum(look)
            if s > 0:
                div(look, s, out=row)
                look = row
                if first:
                    # Seed the belief's evolve memo: the next evolve()
                    # would recompute this exact normalized convolution.
                    belief._evolve_memo = (belief._rev, row.copy())
            else:
                row[:] = look
            first = False
        # … then extract every horizon quantile in one batched pass.  The
        # strict-less count below is exactly searchsorted(cdf, q, 'left')
        # for a monotone CDF, so the indices (and therefore the floats)
        # match the per-step formulation bit for bit.
        cdf = np.add.accumulate(buf, axis=1, out=self._horizon_cdf)
        lt = np.less(cdf, self.quantile, out=self._horizon_lt)
        idx = np.add.reduce(lt, axis=1)
        if self._rates_src is not rates:
            # float(rates[i]) and rates.tolist()[i] are the same double,
            # so the cached list reproduces the scalar lookups exactly.
            self._rates_src = rates
            self._rates_list = rates.tolist()
        rates_list = self._rates_list
        last = len(rates_list) - 1
        cap = (None if self.rate_cap_bps is None
               else self.rate_cap_bps * self.tick / (8.0 * self.packet_bytes))
        # Left-to-right accumulation, matching the original loop's order.
        budget = 0.0
        for i in idx.tolist():
            rate = rates_list[i if i < last else last]
            if cap is not None and rate > cap:
                rate = cap
            budget += rate
        return budget

    def _apply_cap(self, rate_packets_per_tick: float) -> float:
        if self.rate_cap_bps is None:
            return rate_packets_per_tick
        cap = self.rate_cap_bps * self.tick / (8.0 * self.packet_bytes)
        return min(rate_packets_per_tick, cap)
