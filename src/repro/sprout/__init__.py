"""Sprout baseline: stochastic-forecast congestion control (NSDI'13).

Bayesian belief over a drifting Poisson delivery rate, 5th-percentile
cautious forecasts, 100 ms drain target, and the 18 Mbps implementation
cap the paper's §7 discusses.
"""

from .forecast import (
    CAUTION_QUANTILE,
    TARGET_DELAY,
    TICK_SECONDS,
    RateBelief,
    SproutForecaster,
)
from .sender import SproutReceiver, SproutSender

__all__ = [
    "CAUTION_QUANTILE",
    "RateBelief",
    "SproutForecaster",
    "SproutReceiver",
    "SproutSender",
    "TARGET_DELAY",
    "TICK_SECONDS",
]
