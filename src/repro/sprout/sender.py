"""Sprout sender/receiver endpoints.

The receiver owns the rate belief (deliveries are observed where they
happen) and piggybacks the cautious in-flight budget on every
acknowledgement, plus a heartbeat feedback packet each tick so the sender
keeps receiving forecasts when data stalls.  The sender keeps the number
of outstanding packets at or below the forecast budget, pacing each tick's
allowance evenly — the "sendonly" Sprout configuration the paper compares
against.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..netsim.engine import PeriodicTimer
from ..netsim.flow import ReceiverProtocol, SenderProtocol
from ..netsim.packet import ACK_BYTES, MTU_BYTES, Packet
from .forecast import SproutForecaster, TICK_SECONDS


class SproutReceiver(ReceiverProtocol):
    """Counts per-tick arrivals, runs the forecaster, feeds budgets back."""

    def __init__(self, flow_id: int,
                 forecaster: Optional[SproutForecaster] = None):
        super().__init__(flow_id)
        self.forecaster = forecaster if forecaster is not None else SproutForecaster()
        self._tick_arrivals = 0
        self._tick_min_delay: Optional[float] = None
        self._delay_floor: Optional[float] = None
        self._budget = 10.0
        self._timer: Optional[PeriodicTimer] = None
        self._ticks_since_data = 1000
        self._last_tick_saturated = False

    def attach(self, sim, tx) -> None:
        super().attach(sim, tx)
        self._timer = PeriodicTimer(sim, self.forecaster.tick, self._on_tick)
        self._timer.start()

    def on_data(self, packet: Packet) -> None:
        self._record(packet)
        self._tick_arrivals += 1
        delay = self.now - packet.sent_time
        if delay > 0:
            if self._delay_floor is None or delay < self._delay_floor:
                self._delay_floor = delay
            if self._tick_min_delay is None or delay < self._tick_min_delay:
                self._tick_min_delay = delay
        ack = packet.make_ack(self.now, pool=self.ack_pool)
        ack.payload = {"budget": self._budget}
        self.send_ack(ack)

    def _tick_was_censored(self) -> bool:
        """True when the tick showed no queueing: arrivals only bound the
        link rate from below (the sender, not the link, was the limit)."""
        if self._tick_min_delay is None or self._delay_floor is None:
            return True
        margin = 0.3 * self._delay_floor + 0.005
        return self._tick_min_delay < self._delay_floor + margin

    def _on_tick(self) -> None:
        if self._tick_arrivals > 0:
            censored = self._tick_was_censored()
            self._budget = self.forecaster.on_tick(self._tick_arrivals,
                                                   censored=censored)
            self._ticks_since_data = 0
            self._last_tick_saturated = not censored
        else:
            self._ticks_since_data += 1
            if self._ticks_since_data <= 5 and self._last_tick_saturated:
                # Dead air while the queue was known to hold a backlog:
                # genuine evidence of a degraded channel.
                self._budget = self.forecaster.on_tick(0)
            else:
                # Nothing was waiting; an empty tick says nothing about
                # the link.  Widen uncertainty without observing.
                self.forecaster.belief.evolve()
                self._budget = self.forecaster.cautious_budget()
        if self.observers:
            belief = self.forecaster.belief
            self.notify("on_belief", time=self.now, budget=self._budget,
                        arrivals=self._tick_arrivals,
                        belief_mean=belief.mean(),
                        belief_p05=belief.quantile(0.05),
                        ticks=self.forecaster.ticks_processed)
        self._tick_arrivals = 0
        self._tick_min_delay = None
        # Heartbeat feedback so the sender unfreezes after idle periods.
        heartbeat = Packet(flow_id=self.flow_id, seq=-1, size=ACK_BYTES,
                           sent_time=self.now, is_ack=True, ack_seq=-1,
                           payload={"budget": self._budget})
        self.send_ack(heartbeat)


class SproutSender(SenderProtocol):
    """Keeps in-flight data at or below the receiver's cautious budget."""

    def __init__(self, flow_id: int, packet_bytes: int = MTU_BYTES,
                 tick: float = TICK_SECONDS,
                 rate_cap_bps: Optional[float] = 18e6):
        """``rate_cap_bps`` models the bandwidth ceiling of the Sprout
        implementation the paper ran against ("the Sprout implementation
        bandwidth is capped at 18 Mbps", §7); set ``None`` to lift it."""
        super().__init__(flow_id)
        self.packet_bytes = packet_bytes
        self.tick = tick
        self.rate_cap_bps = rate_cap_bps
        self.budget = 10.0
        self._next_seq = 0
        self._sent_times: Dict[int, float] = {}
        self._timer: Optional[PeriodicTimer] = None
        self.srtt: Optional[float] = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        super().start()
        self._timer = PeriodicTimer(self.sim, self.tick, self._on_tick)
        self._timer.start(fire_now=True)

    def stop(self) -> None:
        super().stop()
        if self._timer is not None:
            self._timer.stop()

    # ------------------------------------------------------------------
    def on_ack(self, packet: Packet) -> None:
        if not packet.is_ack or not self.running:
            return
        if packet.payload and "budget" in packet.payload:
            self.budget = float(packet.payload["budget"])
        sent = self._sent_times.pop(packet.ack_seq, None)
        if sent is not None:
            rtt = self.now - sent
            if self.srtt is None:
                self.srtt = rtt
            else:
                self.srtt += 0.125 * (rtt - self.srtt)

    # ------------------------------------------------------------------
    def _inflight(self) -> int:
        """Outstanding packets; entries older than 4 RTTs count as lost
        (Sprout streams — it does not retransmit — so stale entries must
        age out of the in-flight estimate)."""
        if self.srtt is not None:
            horizon = self.now - 4.0 * max(self.srtt, self.tick)
            stale = [seq for seq, t in self._sent_times.items() if t < horizon]
            for seq in stale:
                del self._sent_times[seq]
        return len(self._sent_times)

    def _on_tick(self) -> None:
        if not self.running:
            return
        inflight = self._inflight()
        if self.observers:
            self.notify("on_tick", time=self.now, budget=self.budget,
                        inflight=inflight, srtt=self.srtt)
        allowance = int(round(self.budget)) - inflight
        if allowance <= 0 and inflight < max(2.0, self.budget + 1.0):
            # Probe floor: the channel can only be measured while packets
            # flow, so as long as the flight is not over budget keep one
            # packet per tick moving.
            allowance = 1
        if self.rate_cap_bps is not None:
            per_tick_cap = int(self.rate_cap_bps * self.tick
                               / (8.0 * self.packet_bytes))
            allowance = min(allowance, max(1, per_tick_cap))
        if allowance <= 0:
            return
        spacing = self.tick / allowance
        # One self-rearming pacer event per tick instead of one heap entry
        # per packet of allowance: the k-th emission still fires at
        # base + k * spacing (the same float the per-packet call_later
        # fan-out produced), but the heap holds at most one pacer tuple.
        base = self.now
        self._emit()
        if allowance > 1:
            self.sim.call_at(base + spacing, self._pace,
                             base, spacing, 1, allowance)

    def _pace(self, base: float, spacing: float, k: int,
              allowance: int) -> None:
        if not self.running:
            return
        self._emit()
        k += 1
        if k < allowance:
            self.sim.call_at(base + k * spacing, self._pace,
                             base, spacing, k, allowance)

    def _emit(self) -> None:
        if not self.running:
            return
        seq = self._next_seq
        self._next_seq += 1
        self._sent_times[seq] = self.now
        self.send(Packet(flow_id=self.flow_id, seq=seq,
                         size=self.packet_bytes, sent_time=self.now,
                         window_at_send=self.budget))
