"""From-scratch interpolation library (replaces ALGLIB in the C++ Verus).

Natural cubic splines, monotone PCHIP, linear interpolation, and inverse
(largest-window-below-delay) lookup used by the Verus delay profiler.
"""

from .inverse import InverseLookup, find_crossing, monotone_envelope
from .spline import (
    Interpolator,
    LinearInterpolator,
    NaturalCubicSpline,
    PchipInterpolator,
)

__all__ = [
    "Interpolator",
    "InverseLookup",
    "LinearInterpolator",
    "NaturalCubicSpline",
    "PchipInterpolator",
    "find_crossing",
    "monotone_envelope",
]
