"""Spline interpolation, built from scratch.

The C++ Verus prototype constructs its delay profile with ALGLIB's cubic
spline.  This module provides the equivalents used by the reproduction:

* :class:`NaturalCubicSpline` — the classic C2 interpolant (tridiagonal
  solve for second derivatives, natural boundary conditions).
* :class:`PchipInterpolator` — monotone cubic Hermite interpolation
  (Fritsch–Carlson slope limiting).  Because the delay profile is, up to
  noise, a monotonically increasing function of the window, PCHIP avoids the
  oscillation artifacts a plain cubic spline introduces between noisy knots;
  the Verus window lookup uses it by default.
* :class:`LinearInterpolator` — piecewise-linear baseline.

All interpolators share evaluation semantics: inside the knot range they
interpolate; outside they extrapolate linearly with the boundary slope,
which lets Verus grow its window beyond the explored region of the profile.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np


def _validate_knots(x: Sequence[float], y: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.ndim != 1 or ya.ndim != 1:
        raise ValueError("knots must be one-dimensional")
    if xa.size != ya.size:
        raise ValueError(f"x and y must have equal length ({xa.size} != {ya.size})")
    if xa.size < 2:
        raise ValueError("need at least two knots")
    if np.any(np.diff(xa) <= 0):
        raise ValueError("x knots must be strictly increasing")
    if not (np.all(np.isfinite(xa)) and np.all(np.isfinite(ya))):
        raise ValueError("knots must be finite")
    return xa, ya


class Interpolator:
    """Common evaluation/extrapolation scaffolding for all interpolants."""

    def __init__(self, x: Sequence[float], y: Sequence[float]):
        self.x, self.y = _validate_knots(x, y)

    # subclasses fill these in -----------------------------------------
    def _eval_inside(self, xq: np.ndarray, idx: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def _boundary_slopes(self) -> Tuple[float, float]:
        raise NotImplementedError

    # -------------------------------------------------------------------
    def __call__(self, xq) -> np.ndarray:
        scalar = np.isscalar(xq)
        q = np.atleast_1d(np.asarray(xq, dtype=float))
        out = np.empty_like(q)

        lo, hi = self.x[0], self.x[-1]
        left = q < lo
        right = q > hi
        inside = ~(left | right)

        if np.any(inside):
            idx = np.clip(np.searchsorted(self.x, q[inside], side="right") - 1,
                          0, self.x.size - 2)
            out[inside] = self._eval_inside(q[inside], idx)
        s_lo, s_hi = self._boundary_slopes()
        if np.any(left):
            out[left] = self.y[0] + s_lo * (q[left] - lo)
        if np.any(right):
            out[right] = self.y[-1] + s_hi * (q[right] - hi)
        return float(out[0]) if scalar else out

    @property
    def domain(self) -> Tuple[float, float]:
        return float(self.x[0]), float(self.x[-1])


class LinearInterpolator(Interpolator):
    """Piecewise-linear interpolation with linear extrapolation."""

    def __init__(self, x: Sequence[float], y: Sequence[float]):
        super().__init__(x, y)
        self._slopes = np.diff(self.y) / np.diff(self.x)

    def _eval_inside(self, xq: np.ndarray, idx: np.ndarray) -> np.ndarray:
        return self.y[idx] + self._slopes[idx] * (xq - self.x[idx])

    def _boundary_slopes(self) -> Tuple[float, float]:
        return float(self._slopes[0]), float(self._slopes[-1])


class NaturalCubicSpline(Interpolator):
    """C2 cubic spline with natural (zero second-derivative) boundaries.

    Second derivatives at the knots are obtained with the Thomas algorithm
    on the standard tridiagonal system.
    """

    def __init__(self, x: Sequence[float], y: Sequence[float]):
        super().__init__(x, y)
        n = self.x.size
        h = np.diff(self.x)
        if n == 2:
            self.m = np.zeros(2)
        else:
            # Tridiagonal system for interior second derivatives m[1..n-2].
            sub = h[:-1].copy()
            diag = 2.0 * (h[:-1] + h[1:])
            sup = h[1:].copy()
            rhs = 6.0 * (np.diff(self.y[1:]) / h[1:] - np.diff(self.y[:-1]) / h[:-1])
            m_inner = _thomas_solve(sub, diag, sup, rhs)
            self.m = np.concatenate([[0.0], m_inner, [0.0]])
        self._h = h

    def _eval_inside(self, xq: np.ndarray, idx: np.ndarray) -> np.ndarray:
        x0 = self.x[idx]
        x1 = self.x[idx + 1]
        y0 = self.y[idx]
        y1 = self.y[idx + 1]
        m0 = self.m[idx]
        m1 = self.m[idx + 1]
        h = self._h[idx]
        a = (x1 - xq) / h
        b = (xq - x0) / h
        return (a * y0 + b * y1
                + ((a ** 3 - a) * m0 + (b ** 3 - b) * m1) * h * h / 6.0)

    def _boundary_slopes(self) -> Tuple[float, float]:
        h0, hn = self._h[0], self._h[-1]
        s_lo = (self.y[1] - self.y[0]) / h0 - h0 * self.m[1] / 6.0
        s_hi = (self.y[-1] - self.y[-2]) / hn + hn * self.m[-2] / 6.0
        return float(s_lo), float(s_hi)

    def second_derivatives(self) -> np.ndarray:
        """Knot second derivatives (useful for smoothness tests)."""
        return self.m.copy()


class PchipInterpolator(Interpolator):
    """Monotone piecewise cubic Hermite (Fritsch–Carlson 1980).

    Preserves monotonicity of the data: if ``y`` is non-decreasing between
    knots, the interpolant is non-decreasing everywhere between those knots
    and never overshoots.  This is the interpolant the Verus delay profiler
    uses for window lookup.
    """

    def __init__(self, x: Sequence[float], y: Sequence[float]):
        super().__init__(x, y)
        self.d = _pchip_slopes(self.x, self.y)
        self._h = np.diff(self.x)

    def _eval_inside(self, xq: np.ndarray, idx: np.ndarray) -> np.ndarray:
        h = self._h[idx]
        t = (xq - self.x[idx]) / h
        y0 = self.y[idx]
        y1 = self.y[idx + 1]
        d0 = self.d[idx]
        d1 = self.d[idx + 1]
        h00 = (1 + 2 * t) * (1 - t) ** 2
        h10 = t * (1 - t) ** 2
        h01 = t ** 2 * (3 - 2 * t)
        h11 = t ** 2 * (t - 1)
        return h00 * y0 + h10 * h * d0 + h01 * y1 + h11 * h * d1

    def _boundary_slopes(self) -> Tuple[float, float]:
        return float(self.d[0]), float(self.d[-1])


def _thomas_solve(sub: np.ndarray, diag: np.ndarray, sup: np.ndarray,
                  rhs: np.ndarray) -> np.ndarray:
    """Solve a tridiagonal system in O(n) (Thomas algorithm).

    ``sub``/``sup`` are the sub/super diagonals; all arrays are copied.
    """
    n = diag.size
    c = sup.astype(float).copy()
    d = rhs.astype(float).copy()
    b = diag.astype(float).copy()
    a = sub.astype(float)
    for i in range(1, n):
        w = a[i - 1] / b[i - 1] if i - 1 < a.size else 0.0
        b[i] -= w * c[i - 1]
        d[i] -= w * d[i - 1]
    out = np.empty(n)
    out[-1] = d[-1] / b[-1]
    for i in range(n - 2, -1, -1):
        out[i] = (d[i] - c[i] * out[i + 1]) / b[i]
    return out


def _pchip_slopes(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Fritsch–Carlson limited derivatives at the knots."""
    h = np.diff(x)
    delta = np.diff(y) / h
    n = x.size
    d = np.zeros(n)
    if n == 2:
        d[:] = delta[0]
        return d
    # Interior: weighted harmonic mean when secants agree in sign, else 0.
    # Vectorised over the interior knots; each elementwise operation is
    # the same IEEE double op the scalar loop performed, so the results
    # are bit-identical.  (errstate: near-subnormal secants can overflow
    # the intermediate division — and the masked-out sign-disagreement
    # lanes may produce inf/nan before ``where`` discards them; the
    # harmonic mean then correctly collapses to ~0.)
    with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
        d_lo = delta[:-1]          # delta[i-1]
        d_hi = delta[1:]           # delta[i]
        w1 = 2 * h[1:] + h[:-1]
        w2 = h[1:] + 2 * h[:-1]
        d[1:-1] = np.where(d_lo * d_hi <= 0, 0.0,
                           (w1 + w2) / (w1 / d_lo + w2 / d_hi))
    d[0] = _edge_slope(h[0], h[1], delta[0], delta[1])
    d[-1] = _edge_slope(h[-1], h[-2], delta[-1], delta[-2])
    return d


def _edge_slope(h0: float, h1: float, d0: float, d1: float) -> float:
    """One-sided three-point slope estimate with the PCHIP edge limiter."""
    s = ((2 * h0 + h1) * d0 - h0 * d1) / (h0 + h1)
    if s * d0 <= 0:
        return 0.0
    if d0 * d1 < 0 and abs(s) > 3 * abs(d0):
        return 3.0 * d0
    return float(s)
