"""Inverse lookup on interpolated curves.

Verus needs the inverse query of its delay profile: given a target delay
``Dest``, find the largest sending window whose predicted delay does not
exceed it (Fig 5 in the paper: drop a horizontal at ``Dest,i+1`` and read
off ``W_{i+1}``).  Because an interpolated noisy profile need not be
globally monotone, the lookup scans a dense grid and takes the largest
admissible abscissa, with linear extrapolation beyond the explored region.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional

import numpy as np

from .spline import Interpolator


class InverseLookup:
    """Largest-x-such-that-f(x) <= target query over an interpolant.

    Parameters
    ----------
    interpolator:
        Any :class:`~repro.interp.spline.Interpolator`.
    grid_points:
        Density of the evaluation grid across the knot domain.
    max_extrapolation:
        How far beyond the last knot (as a multiple of the domain width)
        the query may extrapolate when the target exceeds every value on
        the profile.  Extrapolation requires a positive boundary slope;
        otherwise the domain maximum is returned.
    """

    def __init__(self, interpolator: Interpolator, grid_points: int = 512,
                 max_extrapolation: float = 1.0):
        if grid_points < 2:
            raise ValueError("grid_points must be at least 2")
        if max_extrapolation < 0:
            raise ValueError("max_extrapolation must be non-negative")
        self.f = interpolator
        lo, hi = interpolator.domain
        self.grid_x = np.linspace(lo, hi, grid_points)
        self.grid_y = np.asarray(interpolator(self.grid_x), dtype=float)
        self.max_extrapolation = max_extrapolation
        # Query acceleration, precomputed once per (re)build: the suffix
        # minimum S[k] = min(grid_y[k:]) is non-decreasing, and the
        # largest i with grid_y[i] <= target equals the largest k with
        # S[k] <= target — so the per-query O(n) admissibility scan
        # becomes one bisect.  Plain Python lists keep the per-query
        # indexing out of numpy scalar overhead; the float values are
        # exactly the grid values.
        self._suffix_min = np.minimum.accumulate(
            self.grid_y[::-1])[::-1].tolist()
        self._gx = self.grid_x.tolist()
        self._gy = self.grid_y.tolist()
        self._lo = float(lo)
        self._hi = float(hi)
        #: Largest delay on the evaluation grid (profile ceiling).
        self.y_max = float(np.max(self.grid_y))

    def largest_below(self, target: float) -> float:
        """Largest x with f(x) <= target (grid resolution)."""
        suffix_min = self._suffix_min
        if suffix_min[0] > target:
            return self._lo
        last = bisect_right(suffix_min, target) - 1
        gx = self._gx
        if last < len(gx) - 1:
            # Refine between the last admissible grid point and the next:
            # linear cut of the segment for sub-grid resolution.
            gy = self._gy
            x0, x1 = gx[last], gx[last + 1]
            y0, y1 = gy[last], gy[last + 1]
            if y1 > y0:
                frac = (target - y0) / (y1 - y0)
                if frac < 0.0:
                    frac = 0.0
                elif frac > 1.0:
                    frac = 1.0
                return x0 + frac * (x1 - x0)
            return x0
        # Target is above the entire profile: extrapolate along the end slope.
        slope = self._end_slope()
        if slope <= 0:
            return self._hi
        overshoot = (target - self._gy[-1]) / slope
        limit = self.max_extrapolation * (self._hi - self._lo)
        return self._hi + (overshoot if overshoot < limit else limit)

    def _end_slope(self) -> float:
        y_hi = self.grid_y[-1]
        y_prev = self.grid_y[-2]
        dx = self.grid_x[-1] - self.grid_x[-2]
        return float((y_hi - y_prev) / dx) if dx > 0 else 0.0

    def value_at(self, x: float) -> float:
        """Forward evaluation convenience (delegates to the interpolant)."""
        return float(self.f(x))


def monotone_envelope(y: np.ndarray) -> np.ndarray:
    """Running maximum, used to monotonise noisy profiles for analysis."""
    arr = np.asarray(y, dtype=float)
    if arr.ndim != 1:
        raise ValueError("expected a one-dimensional array")
    return np.maximum.accumulate(arr)


def find_crossing(x: np.ndarray, y: np.ndarray, level: float) -> Optional[float]:
    """First x at which the sampled curve crosses ``level`` (linear interp)."""
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.shape != ya.shape or xa.ndim != 1:
        raise ValueError("x and y must be equal-length 1-d arrays")
    above = ya >= level
    if not np.any(above):
        return None
    i = int(np.argmax(above))
    if i == 0:
        return float(xa[0])
    x0, x1, y0, y1 = xa[i - 1], xa[i], ya[i - 1], ya[i]
    if y1 == y0:
        return float(x1)
    return float(x0 + (level - y0) / (y1 - y0) * (x1 - x0))
