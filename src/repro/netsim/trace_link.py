"""Trace-driven link: replays cellular delivery opportunities.

This is the reproduction of the paper's OPNET traffic shaper (§5.3, §6.2):
channel traces recorded from commercial networks "are fed into a traffic
shaper and replayed upon packet arrival".  A trace is a sorted sequence of
timestamps; each timestamp is a *delivery opportunity* that can carry up to
one MTU of queued bytes (the Mahimahi/Sprout convention).  If the queue is
empty, the opportunity is wasted — exactly the property that makes cellular
capacity "use it or lose it" and rewards protocols that keep the pipe
occupied without overfilling the buffer.

Multiple flows share the same ``TraceLink`` through a common queue (the
paper uses a shared RED queue), which is how trace-driven contention
experiments are built.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from .engine import Simulator
from .packet import Packet, MTU_BYTES
from .queues import DropTailQueue

Destination = Callable[[Packet], None]


class TraceLink:
    """Delivers queued packets at trace-defined opportunity instants.

    Parameters
    ----------
    opportunities:
        Sorted timestamps (seconds, relative to link start) at which one
        packet-slot of ``bytes_per_opportunity`` bytes becomes available.
    queue:
        Shared queue discipline (e.g. the paper's RED configuration).
    delay:
        Fixed one-way propagation/core-network delay added after the radio
        scheduler releases a packet.
    loop:
        Replay the trace cyclically when the experiment outlives it.
    loss_rate:
        Independent stochastic loss applied per delivered packet, modelling
        residual losses after link-layer retransmission.
    gap_s:
        Continuation gap inserted at the trace-wraparound seam: when the
        trace repeats, the first opportunity of the next cycle follows the
        last of the previous one by ``gap_s``, regardless of where in its
        own timeline the trace starts.  Without this, a trace whose first
        timestamp is late (e.g. a segment cut from the middle of a longer
        capture) would replay with a dead span equal to that first
        timestamp on every loop, silently lowering the looped rate.
    """

    def __init__(self, sim: Simulator, opportunities: Sequence[float],
                 queue: Optional[DropTailQueue] = None,
                 dst: Optional[Destination] = None,
                 delay: float = 0.0,
                 bytes_per_opportunity: int = MTU_BYTES,
                 loop: bool = True,
                 loss_rate: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 gap_s: float = 0.001,
                 name: str = "tracelink"):
        times = np.asarray(opportunities, dtype=float)
        if times.size == 0:
            raise ValueError("trace must contain at least one opportunity")
        if np.any(np.diff(times) < 0):
            raise ValueError("trace timestamps must be sorted")
        if times[0] < 0:
            raise ValueError("trace timestamps must be non-negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1) (got {loss_rate})")
        if gap_s <= 0:
            raise ValueError(f"gap_s must be positive (got {gap_s})")
        self.sim = sim
        self.times = times
        self.queue = queue if queue is not None else DropTailQueue()
        self.dst = dst
        self.delay = float(delay)
        self.bytes_per_opportunity = int(bytes_per_opportunity)
        self.loop = loop
        self.loss_rate = float(loss_rate)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.gap_s = float(gap_s)
        self.name = name
        self._origin = sim.now
        self._index = 0
        self._cycle = 0
        # Per-opportunity schedule math, precomputed once: the trace
        # timestamps as plain Python floats (identical doubles to the
        # numpy elements), the loop period, and the current cycle's base
        # offset ``origin + cycle * period``.  The base is recomputed by
        # multiplication at each wraparound — never accumulated — so the
        # instant of opportunity i in cycle c is exactly the value the
        # per-call expression used to produce.
        self._times_list = times.tolist()
        self._n = len(self._times_list)
        self._period = float(times[-1] - times[0]) + self.gap_s
        self._cycle_base = self._origin
        self.delivered = 0
        self.bytes_delivered = 0
        self.wasted_opportunities = 0
        self.stochastic_losses = 0
        self._schedule_next()

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        """Entry point for senders; packets wait for the next opportunity."""
        self.queue.push(packet, self.sim.now)

    # ------------------------------------------------------------------
    def _loop_period(self) -> float:
        """One replay cycle: last-minus-first span plus the seam gap.

        Using the *relative* span means the wraparound behaves like
        :func:`~repro.cellular.trace_io.concatenate_traces` — the next
        cycle continues ``gap_s`` after the last opportunity instead of
        replaying the (possibly large) lead-in before the first one.
        """
        return self._period

    def _next_opportunity_time(self) -> Optional[float]:
        if self._index >= self._n:
            if not self.loop:
                return None
            self._index = 0
            self._cycle += 1
            self._cycle_base = self._origin + self._cycle * self._period
        return self._cycle_base + self._times_list[self._index]

    def _schedule_next(self) -> None:
        when = self._next_opportunity_time()
        if when is None:
            return
        when = max(when, self.sim.now)
        self.sim.call_at(when, self._opportunity)

    def _opportunity(self) -> None:
        self._index += 1
        budget = self.bytes_per_opportunity
        queue = self.queue
        now = self.sim.now
        served_any = False
        while budget > 0:
            head = queue.peek()
            if head is None or head.size > budget:
                break
            packet = queue.pop(now)
            budget -= packet.size
            served_any = True
            self._deliver(packet)
        if not served_any:
            self.wasted_opportunities += 1
        # Inlined _schedule_next: the common case (more opportunities in
        # the current cycle, strictly-future instant) is one list index
        # and one add per event.
        i = self._index
        if i >= self._n:
            if not self.loop:
                return
            self._index = i = 0
            self._cycle += 1
            self._cycle_base = self._origin + self._cycle * self._period
        when = self._cycle_base + self._times_list[i]
        if when < now:
            when = now
        self.sim.call_at(when, self._opportunity)

    def _deliver(self, packet: Packet) -> None:
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stochastic_losses += 1
            return
        if self.dst is None:
            raise RuntimeError(f"trace link {self.name!r} has no destination")
        self.delivered += 1
        self.bytes_delivered += packet.size
        if self.delay == 0:
            self.dst(packet)
        else:
            self.sim.call_later(self.delay, self.dst, packet)

    # ------------------------------------------------------------------
    def average_rate_bps(self) -> float:
        """Mean capacity the trace offers over one replay cycle.

        Uses the loop period (relative span + seam gap), so a looped
        replay averages exactly this rate regardless of the trace's
        absolute start time.
        """
        period = self._loop_period()
        if period <= 0:
            return float("inf")
        return self.times.size * self.bytes_per_opportunity * 8.0 / period
