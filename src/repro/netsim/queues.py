"""Bottleneck queue disciplines.

The paper's trace-driven evaluation (§6.2) shapes all competing flows through
a single shared queue with Random Early Detection (RED) using minimum
threshold 3 Mbit, maximum threshold 9 Mbit, and drop probability 10%.  The
cellular macro experiments rely on deep drop-tail buffers at the base station
(the "bufferbloat" TCP suffers from).  Both disciplines are implemented here,
plus CoDel as an extra ablation baseline (cited as [22] in the paper).

All queues count both packets and bytes, stamp ``enqueue_time`` for queue
delay accounting, and report drop statistics.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Optional

import numpy as np

from .packet import Packet


class QueueStats:
    """Running counters shared by all queue disciplines."""

    __slots__ = ("enqueued", "dequeued", "dropped", "bytes_enqueued",
                 "bytes_dequeued", "bytes_dropped")

    def __init__(self) -> None:
        self.enqueued = 0
        self.dequeued = 0
        self.dropped = 0
        self.bytes_enqueued = 0
        self.bytes_dequeued = 0
        self.bytes_dropped = 0

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class DropTailQueue:
    """FIFO queue with a byte-capacity bound (classic drop-tail).

    ``capacity_bytes=None`` models the effectively unbounded base-station
    buffers that cause cellular bufferbloat.
    """

    def __init__(self, capacity_bytes: Optional[int] = None) -> None:
        if capacity_bytes is not None and capacity_bytes <= 0:
            raise ValueError(f"capacity_bytes must be positive (got {capacity_bytes})")
        self.capacity_bytes = capacity_bytes
        self._queue: Deque[Packet] = deque()
        self._bytes = 0
        self.stats = QueueStats()

    def push(self, packet: Packet, now: float) -> bool:
        """Enqueue; returns False (packet dropped) when full."""
        if (self.capacity_bytes is not None
                and self._bytes + packet.size > self.capacity_bytes):
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            return False
        packet.enqueue_time = now
        self._queue.append(packet)
        self._bytes += packet.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        return True

    def pop(self, now: float) -> Optional[Packet]:
        if not self._queue:
            return None
        packet = self._queue.popleft()
        self._bytes -= packet.size
        self.stats.dequeued += 1
        self.stats.bytes_dequeued += packet.size
        return packet

    def peek(self) -> Optional[Packet]:
        return self._queue[0] if self._queue else None

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def bytes(self) -> int:
        return self._bytes

    def clear(self) -> None:
        self._queue.clear()
        self._bytes = 0


class REDQueue(DropTailQueue):
    """Random Early Detection (Floyd & Jacobson 1993) in byte mode.

    The average queue size is tracked with an EWMA (weight ``w_q``) and
    packets are dropped probabilistically between ``min_th`` and ``max_th``
    bytes, with the standard count-since-last-drop correction that spreads
    drops out evenly.

    :meth:`paper_config` builds the exact configuration used in the paper's
    OPNET traffic shaper: min 3 Mbit, max 9 Mbit, max drop probability 10%.
    """

    def __init__(self, min_th_bytes: int, max_th_bytes: int,
                 max_p: float = 0.1, w_q: float = 0.002,
                 capacity_bytes: Optional[int] = None,
                 rng: Optional[np.random.Generator] = None) -> None:
        if not 0 < min_th_bytes < max_th_bytes:
            raise ValueError("need 0 < min_th < max_th")
        if not 0 < max_p <= 1:
            raise ValueError(f"max_p must be in (0, 1] (got {max_p})")
        if capacity_bytes is None:
            # Hard limit defaults to twice the max threshold so misbehaving
            # flows cannot grow the queue without bound.
            capacity_bytes = 2 * max_th_bytes
        super().__init__(capacity_bytes=capacity_bytes)
        self.min_th = min_th_bytes
        self.max_th = max_th_bytes
        self.max_p = max_p
        self.w_q = w_q
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.avg = 0.0
        self._count = -1  # packets since last drop, -1 per RED pseudocode
        self._idle_since: Optional[float] = None
        self.early_drops = 0

    @classmethod
    def paper_config(cls, rng: Optional[np.random.Generator] = None,
                     **kwargs) -> "REDQueue":
        """RED queue with the paper's §6.2 parameters (3/9 Mbit, p=0.1)."""
        return cls(min_th_bytes=3_000_000 // 8, max_th_bytes=9_000_000 // 8,
                   max_p=0.1, rng=rng, **kwargs)

    def push(self, packet: Packet, now: float) -> bool:
        self._update_average(now)
        if self.avg >= self.max_th:
            self._count = 0
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            self.early_drops += 1
            return False
        if self.avg > self.min_th:
            self._count += 1
            p_b = self.max_p * (self.avg - self.min_th) / (self.max_th - self.min_th)
            denom = 1.0 - self._count * p_b
            p_a = p_b / denom if denom > 0 else 1.0
            if self.rng.random() < p_a:
                self._count = 0
                self.stats.dropped += 1
                self.stats.bytes_dropped += packet.size
                self.early_drops += 1
                return False
        else:
            self._count = -1
        return super().push(packet, now)

    def pop(self, now: float) -> Optional[Packet]:
        packet = super().pop(now)
        if packet is not None and not self._queue:
            self._idle_since = now
        return packet

    def _update_average(self, now: float) -> None:
        if self._queue:
            self.avg += self.w_q * (self._bytes - self.avg)
        else:
            # Decay the average while the queue sat idle, as if `m` small
            # packets had drained during the idle period.
            if self._idle_since is not None:
                idle = max(0.0, now - self._idle_since)
                m = idle / 0.001  # transmission-time proxy of 1 ms
                self.avg *= (1.0 - self.w_q) ** min(m, 10_000.0)
            else:
                self.avg *= (1.0 - self.w_q)


class CoDelQueue(DropTailQueue):
    """Controlled Delay AQM (Nichols & Jacobson 2012), simplified.

    Drops from the head once packets have experienced more than ``target``
    sojourn time for at least ``interval``; subsequent drops accelerate with
    the inverse-sqrt control law.  Included as an ablation comparison point —
    the paper cites CoDel as a router-feedback alternative it deliberately
    avoids requiring.
    """

    def __init__(self, target: float = 0.005, interval: float = 0.100,
                 capacity_bytes: Optional[int] = None) -> None:
        super().__init__(capacity_bytes=capacity_bytes)
        if target <= 0 or interval <= 0:
            raise ValueError("target and interval must be positive")
        self.target = target
        self.interval = interval
        self._first_above: Optional[float] = None
        self._dropping = False
        self._drop_next = 0.0
        self._drop_count = 0

    def pop(self, now: float) -> Optional[Packet]:
        packet = super().pop(now)
        while packet is not None:
            sojourn = now - packet.enqueue_time
            ok = self._control(now, sojourn)
            if ok:
                return packet
            # head drop
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            packet = super().pop(now)
        return None

    def _control(self, now: float, sojourn: float) -> bool:
        if sojourn < self.target or self._bytes < 2 * 1400:
            self._first_above = None
            if self._dropping:
                self._dropping = False
            return True
        if self._first_above is None:
            self._first_above = now + self.interval
            return True
        if not self._dropping:
            if now >= self._first_above:
                self._dropping = True
                self._drop_count = max(1, self._drop_count - 2)
                self._drop_next = now + self.interval / math.sqrt(self._drop_count)
                return False
            return True
        if now >= self._drop_next:
            self._drop_count += 1
            self._drop_next = now + self.interval / math.sqrt(self._drop_count)
            return False
        return True
