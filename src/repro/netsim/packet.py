"""Packet representation shared by every protocol in the reproduction.

A single packet class serves data and acknowledgement roles.  Congestion
controllers stamp protocol-specific metadata on data packets (e.g. Verus
records the sending window a packet was emitted under, eq. 6 of the paper
needs ``W_loss``); receivers echo that metadata back on ACKs so the sender
can reconstruct per-packet context without keeping unbounded state.

``Packet`` is a hand-rolled ``__slots__`` class rather than a dataclass:
packet construction sits on the per-delivery hot path of every simulated
link, and slots cut both the per-instance memory and the attribute access
cost.  Equality still compares all fields, mirroring the previous
dataclass semantics.  :class:`PacketPool` adds an *optional* freelist for
the one packet population that is provably short-lived — acknowledgements
— behind an explicit wiring seam that stays off by default, so tracing
and fault-injection paths (which may hold packet references across time)
always see fresh objects unless a caller opts in.
"""

from __future__ import annotations

from typing import List, Optional

#: Default maximum transmission unit used throughout the paper's experiments.
MTU_BYTES = 1400

#: Nominal size of a bare acknowledgement.
ACK_BYTES = 40

_FIELDS = ("flow_id", "seq", "size", "sent_time", "is_ack", "ack_seq",
           "echo_sent_time", "window_at_send", "retransmission",
           "enqueue_time", "ecn", "payload")


class Packet:
    """A simulated packet.

    Attributes
    ----------
    flow_id:
        Identifier of the flow the packet belongs to.
    seq:
        Sequence number, counted in packets (not bytes).
    size:
        Wire size in bytes, including headers.
    sent_time:
        Simulation time at which the *original* transmission happened.  For
        retransmissions this is refreshed so delay samples stay meaningful
        (Karn's rule is enforced separately by the TCP sender).
    is_ack:
        True for acknowledgements travelling on the reverse path.
    ack_seq:
        For ACKs: cumulative acknowledgement (next expected seq) for TCP, or
        the per-packet seq being acknowledged for Verus/Sprout.
    echo_sent_time:
        For ACKs: the ``sent_time`` of the packet being acknowledged, echoed
        so the sender computes RTT without per-packet state.
    window_at_send:
        Verus: sending window W_i in effect when the data packet left the
        sender; echoed on the ACK (used for the delay profile and eq. 6).
    retransmission:
        True if this transmission is a retransmission.
    enqueue_time:
        Stamped by queues on entry; used for queue-delay accounting.
    payload:
        Free-form slot for protocol-specific extras (e.g. Sprout forecast).
    """

    __slots__ = _FIELDS

    def __init__(self, flow_id: int, seq: int, size: int = MTU_BYTES,
                 sent_time: float = 0.0, is_ack: bool = False,
                 ack_seq: int = -1, echo_sent_time: float = 0.0,
                 window_at_send: float = 0.0, retransmission: bool = False,
                 enqueue_time: float = 0.0, ecn: bool = False,
                 payload: Optional[dict] = None):
        self.flow_id = flow_id
        self.seq = seq
        self.size = size
        self.sent_time = sent_time
        self.is_ack = is_ack
        self.ack_seq = ack_seq
        self.echo_sent_time = echo_sent_time
        self.window_at_send = window_at_send
        self.retransmission = retransmission
        self.enqueue_time = enqueue_time
        self.ecn = ecn
        self.payload = payload

    def make_ack(self, now: float, ack_seq: Optional[int] = None,
                 size: int = ACK_BYTES,
                 pool: "Optional[PacketPool]" = None) -> "Packet":
        """Build the acknowledgement for this data packet.

        ``ack_seq`` defaults to this packet's own sequence number (per-packet
        acknowledgement, as used by Verus and Sprout); TCP receivers pass the
        cumulative next-expected sequence instead.  When ``pool`` is given
        the acknowledgement is drawn from that freelist instead of being
        freshly allocated; every field is (re)assigned either way.
        """
        if ack_seq is None:
            ack_seq = self.seq
        if pool is not None:
            return pool.acquire_ack(self, now, ack_seq, size)
        return Packet(
            flow_id=self.flow_id,
            seq=self.seq,
            size=size,
            sent_time=now,
            is_ack=True,
            ack_seq=ack_seq,
            echo_sent_time=self.sent_time,
            window_at_send=self.window_at_send,
            retransmission=self.retransmission,
        )

    def __eq__(self, other: object) -> bool:
        if other.__class__ is not Packet:
            return NotImplemented
        return all(getattr(self, f) == getattr(other, f) for f in _FIELDS)

    # Mirror the previous dataclass(eq=True) semantics: unhashable.
    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return f"<{kind} flow={self.flow_id} seq={self.seq} size={self.size}>"


class PacketPool:
    """Bounded freelist for short-lived acknowledgement packets.

    The seam contract: a packet may be :meth:`release`-d only once nothing
    holds a reference to it — in practice the wiring layer releases an ACK
    right after the sender's ``on_ack`` handler returns (see
    :class:`~repro.netsim.topology.Dumbbell`).  ``acquire_ack`` reassigns
    *every* field, so a recycled packet is indistinguishable from a fresh
    one; ``release`` additionally drops the ``payload`` reference so pooled
    corpses never pin protocol state alive.  Paths that retain packets
    across simulated time (fault injectors replaying or duplicating,
    debugging by object identity) must simply not enable the pool — it is
    off by default everywhere.
    """

    __slots__ = ("_free", "max_size", "allocated", "reused")

    def __init__(self, max_size: int = 256):
        if max_size < 1:
            raise ValueError("max_size must be at least 1")
        self._free: List[Packet] = []
        self.max_size = max_size
        #: Packets built fresh because the freelist was empty.
        self.allocated = 0
        #: Packets served from the freelist.
        self.reused = 0

    def acquire_ack(self, data: Packet, now: float, ack_seq: int,
                    size: int) -> Packet:
        """The pooled equivalent of :meth:`Packet.make_ack`."""
        free = self._free
        if free:
            self.reused += 1
            ack = free.pop()
            ack.flow_id = data.flow_id
            ack.seq = data.seq
            ack.size = size
            ack.sent_time = now
            ack.is_ack = True
            ack.ack_seq = ack_seq
            ack.echo_sent_time = data.sent_time
            ack.window_at_send = data.window_at_send
            ack.retransmission = data.retransmission
            ack.enqueue_time = 0.0
            ack.ecn = False
            ack.payload = None
            return ack
        self.allocated += 1
        return Packet(
            flow_id=data.flow_id,
            seq=data.seq,
            size=size,
            sent_time=now,
            is_ack=True,
            ack_seq=ack_seq,
            echo_sent_time=data.sent_time,
            window_at_send=data.window_at_send,
            retransmission=data.retransmission,
        )

    def release(self, packet: Packet) -> None:
        """Return ``packet`` to the freelist (drops any payload reference)."""
        packet.payload = None
        if len(self._free) < self.max_size:
            self._free.append(packet)

    def __len__(self) -> int:
        return len(self._free)
