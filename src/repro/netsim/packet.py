"""Packet representation shared by every protocol in the reproduction.

A single packet class serves data and acknowledgement roles.  Congestion
controllers stamp protocol-specific metadata on data packets (e.g. Verus
records the sending window a packet was emitted under, eq. 6 of the paper
needs ``W_loss``); receivers echo that metadata back on ACKs so the sender
can reconstruct per-packet context without keeping unbounded state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: Default maximum transmission unit used throughout the paper's experiments.
MTU_BYTES = 1400

#: Nominal size of a bare acknowledgement.
ACK_BYTES = 40


@dataclass
class Packet:
    """A simulated packet.

    Attributes
    ----------
    flow_id:
        Identifier of the flow the packet belongs to.
    seq:
        Sequence number, counted in packets (not bytes).
    size:
        Wire size in bytes, including headers.
    sent_time:
        Simulation time at which the *original* transmission happened.  For
        retransmissions this is refreshed so delay samples stay meaningful
        (Karn's rule is enforced separately by the TCP sender).
    is_ack:
        True for acknowledgements travelling on the reverse path.
    ack_seq:
        For ACKs: cumulative acknowledgement (next expected seq) for TCP, or
        the per-packet seq being acknowledged for Verus/Sprout.
    echo_sent_time:
        For ACKs: the ``sent_time`` of the packet being acknowledged, echoed
        so the sender computes RTT without per-packet state.
    window_at_send:
        Verus: sending window W_i in effect when the data packet left the
        sender; echoed on the ACK (used for the delay profile and eq. 6).
    retransmission:
        True if this transmission is a retransmission.
    enqueue_time:
        Stamped by queues on entry; used for queue-delay accounting.
    payload:
        Free-form slot for protocol-specific extras (e.g. Sprout forecast).
    """

    flow_id: int
    seq: int
    size: int = MTU_BYTES
    sent_time: float = 0.0
    is_ack: bool = False
    ack_seq: int = -1
    echo_sent_time: float = 0.0
    window_at_send: float = 0.0
    retransmission: bool = False
    enqueue_time: float = 0.0
    ecn: bool = False
    payload: Optional[dict] = field(default=None, repr=False)

    def make_ack(self, now: float, ack_seq: Optional[int] = None,
                 size: int = ACK_BYTES) -> "Packet":
        """Build the acknowledgement for this data packet.

        ``ack_seq`` defaults to this packet's own sequence number (per-packet
        acknowledgement, as used by Verus and Sprout); TCP receivers pass the
        cumulative next-expected sequence instead.
        """
        return Packet(
            flow_id=self.flow_id,
            seq=self.seq,
            size=size,
            sent_time=now,
            is_ack=True,
            ack_seq=self.seq if ack_seq is None else ack_seq,
            echo_sent_time=self.sent_time,
            window_at_send=self.window_at_send,
            retransmission=self.retransmission,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "ACK" if self.is_ack else "DATA"
        return f"<{kind} flow={self.flow_id} seq={self.seq} size={self.size}>"
