"""Path impairments for robustness testing: jitter, reordering, duplication.

§5.2 of the paper specifies how Verus deals with packet reordering (a
3 × delay timer per missing sequence number before declaring a loss).
These wrappers inject the pathologies that machinery must survive; the
failure-injection tests drive every protocol through them.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .engine import Simulator
from .packet import Packet

Destination = Callable[[Packet], None]


class JitterLink:
    """Adds random per-packet delay on top of a base delay.

    Because each packet draws an independent extra delay, packets can
    overtake each other — this is the canonical reordering generator.

    Pass a seeded ``rng`` for reproducible runs; it should be derived
    from the scenario/flow seed (e.g. via ``SeedSequence.spawn``) so
    each link in a topology gets its own stream.  When omitted, the
    link draws a fresh OS-entropy stream — two unseeded links are never
    correlated, but the run is not replayable.
    """

    def __init__(self, sim: Simulator, base_delay: float,
                 jitter: float, dst: Optional[Destination] = None,
                 rng: Optional[np.random.Generator] = None):
        if base_delay < 0 or jitter < 0:
            raise ValueError("delays must be non-negative")
        self.sim = sim
        self.base_delay = base_delay
        self.jitter = jitter
        self.dst = dst
        # A fixed default seed here would hand every unseeded instance
        # the *same* stream — two jitter links in one topology would
        # jitter in lockstep.  Fresh entropy keeps them independent.
        self.rng = rng if rng is not None else np.random.default_rng()

    def send(self, packet: Packet) -> None:
        if self.dst is None:
            raise RuntimeError("JitterLink has no destination attached")
        delay = self.base_delay + float(self.rng.uniform(0.0, self.jitter))
        self.sim.call_later(delay, self.dst, packet)


class ReorderingLink:
    """Deterministically swaps every Nth packet with its successor.

    Unlike :class:`JitterLink` the amount of reordering is exact, which
    makes assertions about spurious-loss behaviour reproducible.
    """

    def __init__(self, sim: Simulator, delay: float, every_n: int = 10,
                 hold_time: float = 0.005,
                 dst: Optional[Destination] = None):
        if every_n < 2:
            raise ValueError("every_n must be at least 2")
        if delay < 0 or hold_time <= 0:
            raise ValueError("delay must be >= 0 and hold_time > 0")
        self.sim = sim
        self.delay = delay
        self.every_n = every_n
        self.hold_time = hold_time
        self.dst = dst
        self._count = 0
        self.reordered = 0

    def send(self, packet: Packet) -> None:
        if self.dst is None:
            raise RuntimeError("ReorderingLink has no destination attached")
        self._count += 1
        if self._count % self.every_n == 0:
            # Hold this packet back past its successors.
            self.reordered += 1
            self.sim.call_later(self.delay + self.hold_time, self.dst, packet)
        else:
            self.sim.call_later(self.delay, self.dst, packet)


class DuplicatingLink:
    """Duplicates every Nth packet (stale-ACK / dup-delivery injection)."""

    def __init__(self, sim: Simulator, delay: float, every_n: int = 20,
                 dst: Optional[Destination] = None):
        if every_n < 1:
            raise ValueError("every_n must be at least 1")
        self.sim = sim
        self.delay = delay
        self.every_n = every_n
        self.dst = dst
        self._count = 0
        self.duplicated = 0

    def send(self, packet: Packet) -> None:
        if self.dst is None:
            raise RuntimeError("DuplicatingLink has no destination attached")
        self._count += 1
        self.sim.call_later(self.delay, self.dst, packet)
        if self._count % self.every_n == 0:
            self.duplicated += 1
            self.sim.call_later(self.delay + 0.0001, self.dst, packet)
