"""Discrete-event network simulation substrate.

This package replaces the paper's OPNET simulator and ``tc``-shaped Ethernet
testbed: a heap-scheduled event engine, rate/queue/propagation links,
trace-driven cellular links, schedule-driven variable links, queue
disciplines (drop-tail, RED with the paper's parameters, CoDel) and dumbbell
topology wiring.
"""

from .engine import Event, PeriodicTimer, SimulationError, Simulator
from .fair_queue import DRRQueue
from .flow import Clock, Demux, EventHandle, ReceiverProtocol, SenderProtocol
from .impairments import DuplicatingLink, JitterLink, ReorderingLink
from .link import DelayLine, Link, LinkPhase, LinkSchedule, VariableLink
from .packet import ACK_BYTES, MTU_BYTES, Packet, PacketPool
from .queues import CoDelQueue, DropTailQueue, QueueStats, REDQueue
from .topology import Dumbbell, DirectPath, FlowHandle, OnOffSource, SinkReceiver
from .trace_link import TraceLink
from .tracing import FlowTracer, PacketTap, TapRecord

__all__ = [
    "ACK_BYTES",
    "Clock",
    "CoDelQueue",
    "DelayLine",
    "Demux",
    "DRRQueue",
    "DirectPath",
    "DropTailQueue",
    "Dumbbell",
    "DuplicatingLink",
    "Event",
    "EventHandle",
    "FlowTracer",
    "JitterLink",
    "ReorderingLink",
    "FlowHandle",
    "Link",
    "LinkPhase",
    "LinkSchedule",
    "MTU_BYTES",
    "OnOffSource",
    "Packet",
    "PacketPool",
    "PacketTap",
    "PeriodicTimer",
    "QueueStats",
    "REDQueue",
    "ReceiverProtocol",
    "SenderProtocol",
    "SimulationError",
    "Simulator",
    "SinkReceiver",
    "TapRecord",
    "TraceLink",
    "VariableLink",
]
