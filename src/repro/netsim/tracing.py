"""Packet-event tracing: tap any link and export per-packet timelines.

Debugging congestion control means asking "where did packet 4711 spend
its time?".  A :class:`PacketTap` wraps any destination callable and logs
(time, event, packet) records; :class:`FlowTracer` assembles taps placed
at the sender exit and receiver entry into per-packet timelines with
one-way delay decomposition.  Export is a plain-text "pcap-lite" that
diffs cleanly between runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional

from .packet import Packet

Destination = Callable[[Packet], None]


@dataclass
class TapRecord:
    """One observed packet event."""

    time: float
    point: str          # e.g. "sender-out", "receiver-in"
    flow_id: int
    seq: int
    size: int
    is_ack: bool
    retransmission: bool

    def line(self) -> str:
        kind = "ACK " if self.is_ack else "DATA"
        rtx = " RTX" if self.retransmission else ""
        return (f"{self.time * 1e3:12.3f}ms  {self.point:<14s} {kind} "
                f"flow={self.flow_id} seq={self.seq} size={self.size}{rtx}")


class PacketTap:
    """Transparent observation point in front of any destination.

    Records are stamped with ``clock()`` — pass ``lambda: sim.now`` (or a
    live :class:`~repro.live.clock.WallClock`'s ``now``) so the stamp is
    the *observation* time.  Without a clock the tap falls back to the
    packet's ``sent_time``, clamped to be non-decreasing in arrival
    order: a raw ``sent_time`` fallback would stamp ACKs with their
    creation time and retransmissions with their refreshed send time,
    placing them before earlier-observed events and misordering exported
    timelines.
    """

    def __init__(self, point: str, dst: Optional[Destination] = None,
                 clock: Optional[Callable[[], float]] = None,
                 max_records: Optional[int] = None):
        if not point:
            raise ValueError("tap needs a point name")
        self.point = point
        self.dst = dst
        self.clock = clock
        self.max_records = max_records
        self.records: List[TapRecord] = []
        self.dropped_records = 0
        self._last_time = float("-inf")

    def __call__(self, packet: Packet) -> None:
        if self.clock is not None:
            now = self.clock()
        else:
            # Monotone fallback: observation order defines the timeline.
            now = max(packet.sent_time, self._last_time)
        self._last_time = now
        if self.max_records is None or len(self.records) < self.max_records:
            self.records.append(TapRecord(
                time=now, point=self.point, flow_id=packet.flow_id,
                seq=packet.seq, size=packet.size, is_ack=packet.is_ack,
                retransmission=packet.retransmission))
        else:
            self.dropped_records += 1
        if self.dst is not None:
            self.dst(packet)

    # convenience -------------------------------------------------------
    def seqs(self) -> List[int]:
        return [r.seq for r in self.records]

    def count(self, is_ack: Optional[bool] = None) -> int:
        if is_ack is None:
            return len(self.records)
        return sum(1 for r in self.records if r.is_ack == is_ack)


class FlowTracer:
    """Collects taps and reconstructs per-packet timelines.

    ``clock`` is the default observation clock handed to every tap
    created through :meth:`tap`; per-tap clocks override it.  Give the
    tracer the experiment's clock once (``FlowTracer(lambda: sim.now)``)
    instead of repeating it at every tap site.
    """

    def __init__(self, clock: Optional[Callable[[], float]] = None) -> None:
        self.taps: Dict[str, PacketTap] = {}
        self.clock = clock
        self._sorted_cache: Optional[List[TapRecord]] = None
        self._sorted_signature: Optional[tuple] = None

    def tap(self, point: str, dst: Optional[Destination] = None,
            clock: Optional[Callable[[], float]] = None,
            max_records: Optional[int] = None) -> PacketTap:
        """Create and register a tap; insert its return value as ``dst``."""
        if point in self.taps:
            raise ValueError(f"tap {point!r} already registered")
        created = PacketTap(point, dst=dst,
                            clock=clock if clock is not None else self.clock,
                            max_records=max_records)
        self.taps[point] = created
        return created

    def timeline(self, flow_id: int, seq: int) -> List[TapRecord]:
        """All events for one packet, time-ordered across taps."""
        events = [record
                  for tap in self.taps.values()
                  for record in tap.records
                  if record.flow_id == flow_id and record.seq == seq]
        return sorted(events, key=lambda r: r.time)

    def hop_delay(self, flow_id: int, seq: int, from_point: str,
                  to_point: str) -> Optional[float]:
        """First-crossing delay of a data packet between two taps."""
        start = self._first(flow_id, seq, from_point)
        end = self._first(flow_id, seq, to_point)
        if start is None or end is None:
            return None
        return end.time - start.time

    def _first(self, flow_id: int, seq: int,
               point: str) -> Optional[TapRecord]:
        tap = self.taps.get(point)
        if tap is None:
            return None
        for record in tap.records:
            if (record.flow_id == flow_id and record.seq == seq
                    and not record.is_ack):
                return record
        return None

    def _sorted_records(self) -> List[TapRecord]:
        """Time-ordered view over all taps, cached between appends.

        Tap record lists are append-only, so (tap set, per-tap lengths)
        identifies the content exactly; repeated exports and timeline
        queries on a quiescent tracer skip the O(n log n) re-sort.
        """
        signature = tuple((name, len(tap.records))
                          for name, tap in self.taps.items())
        if self._sorted_cache is not None \
                and signature == self._sorted_signature:
            return self._sorted_cache
        self._sorted_cache = sorted(
            (record for tap in self.taps.values() for record in tap.records),
            key=lambda r: (r.time, r.point))
        self._sorted_signature = signature
        return self._sorted_cache

    def export(self, path) -> int:
        """Write all records, time-ordered, to a text file.  Returns the
        number of lines written."""
        records = self._sorted_records()
        text = "\n".join(record.line() for record in records)
        Path(path).write_text(text + ("\n" if text else ""))
        return len(records)

    def export_jsonl(self, path) -> int:
        """Machine-readable export: one JSON object per record, time-ordered.

        The same records as :meth:`export`, but diffable and
        post-processable without parsing the human-oriented text format —
        the intended interchange for live-path traces.  Returns the number
        of lines written.
        """
        import json

        records = self._sorted_records()
        with open(path, "w") as fh:
            for r in records:
                fh.write(json.dumps({
                    "time": r.time, "point": r.point, "flow_id": r.flow_id,
                    "seq": r.seq, "size": r.size, "is_ack": r.is_ack,
                    "retransmission": r.retransmission,
                }, separators=(",", ":")) + "\n")
        return len(records)
