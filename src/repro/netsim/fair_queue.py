"""Deficit-round-robin fair queueing (per-flow queues).

§3 of the paper notes that "the cellular scheduler maintains separate
queues for each user" (and then shows contention still couples users
through the shared radio resource).  The trace-driven evaluation uses a
single shared RED queue; this discipline provides the per-flow
alternative so the modelling choice can be ablated: with DRR, one flow's
bufferbloat no longer adds queueing delay to its neighbours, but the
radio scheduler's capacity is still shared.

Implements Shreedhar & Varghese's Deficit Round Robin with a per-flow
byte quantum and per-flow drop-tail capacity.  The interface matches
:class:`~repro.netsim.queues.DropTailQueue` (push/pop/peek/bytes), so it
drops into any link type.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from .packet import Packet
from .queues import QueueStats


class DRRQueue:
    """Deficit Round Robin across per-flow FIFO queues."""

    def __init__(self, quantum_bytes: int = 1400,
                 per_flow_capacity_bytes: Optional[int] = None):
        if quantum_bytes <= 0:
            raise ValueError("quantum must be positive")
        if per_flow_capacity_bytes is not None and per_flow_capacity_bytes <= 0:
            raise ValueError("per-flow capacity must be positive")
        self.quantum = quantum_bytes
        self.per_flow_capacity = per_flow_capacity_bytes
        self._queues: "OrderedDict[int, Deque[Packet]]" = OrderedDict()
        self._deficits: Dict[int, int] = {}
        self._flow_bytes: Dict[int, int] = {}
        self._bytes = 0
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    def push(self, packet: Packet, now: float) -> bool:
        flow = packet.flow_id
        if (self.per_flow_capacity is not None
                and self._flow_bytes.get(flow, 0) + packet.size
                > self.per_flow_capacity):
            self.stats.dropped += 1
            self.stats.bytes_dropped += packet.size
            return False
        if flow not in self._queues:
            self._queues[flow] = deque()
            self._deficits[flow] = 0
        packet.enqueue_time = now
        self._queues[flow].append(packet)
        self._flow_bytes[flow] = self._flow_bytes.get(flow, 0) + packet.size
        self._bytes += packet.size
        self.stats.enqueued += 1
        self.stats.bytes_enqueued += packet.size
        return True

    def pop(self, now: float) -> Optional[Packet]:
        """Serve the next packet under DRR scheduling."""
        if self._bytes == 0:
            return None
        # At most two full rounds are needed: one to refill deficits, one
        # to find a servable head (every non-empty queue's head becomes
        # servable once its deficit accrues a quantum ≥ its size... loop
        # until some head fits; bounded because deficits grow each round).
        for _ in range(16 * max(1, len(self._queues))):
            flow, queue = next(iter(self._queues.items()))
            if not queue:
                # Empty queue leaves the active list and forfeits deficit.
                del self._queues[flow]
                self._deficits.pop(flow, None)
                self._flow_bytes.pop(flow, None)
                continue
            head = queue[0]
            if self._deficits[flow] >= head.size:
                self._deficits[flow] -= head.size
                queue.popleft()
                self._flow_bytes[flow] -= head.size
                self._bytes -= head.size
                self.stats.dequeued += 1
                self.stats.bytes_dequeued += head.size
                # Keep the flow at the head of the round while it has
                # deficit; it rotates once its deficit is exhausted.
                if not queue or self._deficits[flow] < queue[0].size:
                    self._rotate(flow, refill=False)
                return head
            self._rotate(flow, refill=True)
        return None   # pragma: no cover - defensive bound

    def _rotate(self, flow: int, refill: bool) -> None:
        queue = self._queues.pop(flow)
        if queue:
            self._queues[flow] = queue
            if refill:
                self._deficits[flow] += self.quantum
        else:
            self._deficits.pop(flow, None)
            self._flow_bytes.pop(flow, None)

    # ------------------------------------------------------------------
    def peek(self) -> Optional[Packet]:
        for queue in self._queues.values():
            if queue:
                return queue[0]
        return None

    def __len__(self) -> int:
        return sum(len(q) for q in self._queues.values())

    @property
    def bytes(self) -> int:
        return self._bytes

    def flow_backlog(self, flow_id: int) -> int:
        """Bytes currently queued for one flow."""
        return self._flow_bytes.get(flow_id, 0)

    def active_flows(self) -> int:
        return sum(1 for q in self._queues.values() if q)

    def clear(self) -> None:
        self._queues.clear()
        self._deficits.clear()
        self._flow_bytes.clear()
        self._bytes = 0


def paper_shared_vs_per_flow_note() -> str:
    """Reference note for the queue-model ablation (see DESIGN.md)."""
    return ("Paper §6.2 shapes all flows through one shared RED queue; "
            "§3 notes real base stations keep per-user queues. DRRQueue "
            "provides the per-flow model for the ablation.")
