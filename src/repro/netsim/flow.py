"""Protocol endpoint interfaces and flow wiring.

Every congestion controller in this repository (Verus, TCP variants, Sprout)
implements the small :class:`SenderProtocol` interface; every receiver
implements :class:`ReceiverProtocol`.  Endpoints are attached to a *clock*
(anything satisfying :class:`Clock`) and a transmit callable, so the same
protocol code runs unchanged over fixed links, trace-driven cellular links,
schedule-driven variable links — and, via :mod:`repro.live`, over real UDP
sockets driven by wall-clock timers.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

try:  # pragma: no cover - Protocol is 3.8+; fall back for exotic installs
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls

from .packet import Packet, PacketPool

Transmit = Callable[[Packet], None]


@runtime_checkable
class EventHandle(Protocol):
    """Cancellable handle returned by :meth:`Clock.schedule`."""

    def cancel(self) -> None: ...

    @property
    def active(self) -> bool: ...


@runtime_checkable
class Clock(Protocol):
    """The scheduling surface protocol endpoints depend on.

    :class:`~repro.netsim.engine.Simulator` implements it with simulated
    time; :class:`repro.live.clock.WallClock` implements it with asyncio
    wall-clock timers.  Protocol code must only ever touch ``now``,
    ``schedule`` and the fire-and-forget ``call_later`` fast path (plus
    :class:`~repro.netsim.engine.PeriodicTimer`, which itself only uses
    the first two), never simulator-only APIs such as
    ``run``/``step`` — that is what keeps one protocol implementation
    valid on both substrates.
    """

    @property
    def now(self) -> float: ...

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> EventHandle: ...

    def call_later(self, delay: float, callback: Callable[..., Any],
                   *args: Any) -> None: ...


class SenderProtocol:
    """Base class for congestion-controlled senders.

    Subclasses implement :meth:`start` (begin transmitting) and
    :meth:`on_ack` (acknowledgement arrival).  ``self.send(packet)`` injects
    a data packet into the attached network path.
    """

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.sim: Optional[Clock] = None
        self._tx: Optional[Transmit] = None
        self.running = False
        self.packets_sent = 0
        self.bytes_sent = 0
        self.start_time: Optional[float] = None
        self.stop_time: Optional[float] = None
        # Conformance seam (see repro.check): observer objects whose
        # optional methods (on_epoch, on_loss, ...) are invoked by the
        # concrete senders at well-defined control-law points.  Empty for
        # normal runs; call sites guard on the list so the hot path pays
        # one falsy check only.
        self.observers: List[Any] = []

    # -- wiring --------------------------------------------------------
    def attach(self, sim: Clock, tx: Transmit) -> None:
        self.sim = sim
        self._tx = tx

    def send(self, packet: Packet) -> None:
        if self._tx is None or self.sim is None:
            raise RuntimeError("sender not attached to a network path")
        self.packets_sent += 1
        self.bytes_sent += packet.size
        self._tx(packet)

    @property
    def now(self) -> float:
        if self.sim is None:
            raise RuntimeError("sender not attached")
        return self.sim.now

    def notify(self, event: str, **fields: Any) -> None:
        """Dispatch ``event`` to every observer that implements it.

        Observers are duck-typed: an observer interested in, say, loss
        events defines ``on_loss(sender, **fields)`` and ignores the
        rest.  An observer that wants *every* event raw (e.g. a timeline
        recorder) defines ``record_event(sender, event, fields)``
        instead and receives the packed fields dict directly — that path
        skips a second kwargs pack/unpack and the per-event-name lookup,
        roughly halving per-event cost on the epoch hot path.  Exceptions
        propagate — a conformance monitor failing loudly is the point.
        """
        for observer in self.observers:
            sink = getattr(observer, "record_event", None)
            if sink is not None:
                sink(self, event, fields)
            else:
                handler = getattr(observer, event, None)
                if handler is not None:
                    handler(self, **fields)

    # -- protocol hooks --------------------------------------------------
    def start(self) -> None:
        self.running = True
        self.start_time = self.now

    def stop(self) -> None:
        self.running = False
        self.stop_time = self.now

    def on_ack(self, packet: Packet) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class ReceiverProtocol:
    """Base receiver: acknowledges data and records delivery statistics.

    The default behaviour — one acknowledgement per data packet, echoing the
    sender timestamp and window metadata — is what Verus and Sprout use.
    TCP receivers override :meth:`on_data` to send cumulative ACKs.

    Recorded per delivery: arrival time, sequence, one-way delay (arrival
    minus original send time, i.e. including all queueing) and size.  These
    records feed every figure's throughput/delay statistics.
    """

    def __init__(self, flow_id: int):
        self.flow_id = flow_id
        self.sim: Optional[Clock] = None
        self._tx: Optional[Transmit] = None
        self.packets_received = 0
        self.bytes_received = 0
        self.deliveries: List[Tuple[float, int, float, int]] = []
        self.record = True
        #: Optional acknowledgement freelist (see
        #: :class:`~repro.netsim.packet.PacketPool`).  Set by the wiring
        #: layer when the topology releases ACKs after delivery; None
        #: keeps every ACK freshly allocated.
        self.ack_pool: Optional[PacketPool] = None
        # Same observer seam as SenderProtocol, for receiver-side state
        # worth a timeline (e.g. Sprout's forecaster belief).  Empty for
        # normal runs; emit points guard on the list.
        self.observers: List[Any] = []

    def attach(self, sim: Clock, tx: Transmit) -> None:
        self.sim = sim
        self._tx = tx

    @property
    def now(self) -> float:
        if self.sim is None:
            raise RuntimeError("receiver not attached")
        return self.sim.now

    def notify(self, event: str, **fields: Any) -> None:
        """Dispatch ``event`` to every observer that implements it (same
        duck-typed contract as :meth:`SenderProtocol.notify`, including
        the ``record_event`` raw fast path)."""
        for observer in self.observers:
            sink = getattr(observer, "record_event", None)
            if sink is not None:
                sink(self, event, fields)
            else:
                handler = getattr(observer, event, None)
                if handler is not None:
                    handler(self, **fields)

    def send_ack(self, ack: Packet) -> None:
        if self._tx is None:
            raise RuntimeError("receiver not attached to a reverse path")
        self._tx(ack)

    def on_data(self, packet: Packet) -> None:
        self._record(packet)
        self.send_ack(packet.make_ack(self.now, pool=self.ack_pool))

    def _record(self, packet: Packet) -> None:
        self.packets_received += 1
        self.bytes_received += packet.size
        if self.record:
            now = self.now
            self.deliveries.append((now, packet.seq, now - packet.sent_time,
                                    packet.size))


class Demux:
    """Routes packets arriving at a shared link output to per-flow sinks."""

    def __init__(self) -> None:
        self._sinks: Dict[int, Callable[[Packet], None]] = {}
        self.unroutable = 0

    def register(self, flow_id: int, sink: Callable[[Packet], None]) -> None:
        if flow_id in self._sinks:
            raise ValueError(f"flow {flow_id} already registered")
        self._sinks[flow_id] = sink

    def __call__(self, packet: Packet) -> None:
        sink = self._sinks.get(packet.flow_id)
        if sink is None:
            self.unroutable += 1
            return
        sink(packet)
