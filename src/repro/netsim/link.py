"""Link models: fixed-rate bottlenecks, pure delay lines, and variable links.

Every link is unidirectional.  A link accepts packets via :meth:`send`,
queues them, serialises them at its line rate, applies stochastic loss, and
after a propagation delay hands each packet to ``dst`` — any callable taking
a :class:`~repro.netsim.packet.Packet`.

``VariableLink`` is the reproduction of the paper's micro-evaluation setup
(§7), where Linux ``tc`` re-shapes capacity, RTT and loss every five seconds;
here a :class:`LinkSchedule` applies the same piecewise-constant changes
deterministically inside the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue

Destination = Callable[[Packet], None]


class DelayLine:
    """Infinite-bandwidth link with fixed propagation delay (ACK paths)."""

    def __init__(self, sim: Simulator, delay: float, dst: Optional[Destination] = None):
        if delay < 0:
            raise ValueError(f"delay must be non-negative (got {delay})")
        self.sim = sim
        self.delay = delay
        self.dst = dst

    def send(self, packet: Packet) -> None:
        if self.dst is None:
            raise RuntimeError("DelayLine has no destination attached")
        if self.delay == 0:
            self.dst(packet)
        else:
            self.sim.call_later(self.delay, self.dst, packet)


class Link:
    """Rate-limited store-and-forward link with an attached queue discipline.

    Parameters
    ----------
    rate_bps:
        Line rate in bits per second.
    delay:
        One-way propagation delay in seconds, applied after serialisation.
    queue:
        Queue discipline; defaults to an unbounded drop-tail queue.
    loss_rate:
        Independent per-packet stochastic loss probability, applied at
        dequeue (models the cellular medium's non-congestion losses).
    """

    def __init__(self, sim: Simulator, rate_bps: float, delay: float = 0.0,
                 queue: Optional[DropTailQueue] = None,
                 dst: Optional[Destination] = None,
                 loss_rate: float = 0.0,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "link"):
        if rate_bps <= 0:
            raise ValueError(f"rate_bps must be positive (got {rate_bps})")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1) (got {loss_rate})")
        self.sim = sim
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.queue = queue if queue is not None else DropTailQueue()
        self.dst = dst
        self.loss_rate = float(loss_rate)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.name = name
        self._busy = False
        self.delivered = 0
        self.bytes_delivered = 0
        self.stochastic_losses = 0

    # ------------------------------------------------------------------
    def send(self, packet: Packet) -> None:
        accepted = self.queue.push(packet, self.sim.now)
        if accepted and not self._busy:
            self._start_transmission()

    def _start_transmission(self) -> None:
        packet = self.queue.pop(self.sim.now)
        if packet is None:
            self._busy = False
            return
        self._busy = True
        tx_time = packet.size * 8.0 / self.rate_bps
        self.sim.call_later(tx_time, self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stochastic_losses += 1
        else:
            self._deliver(packet)
        self._start_transmission()

    def _deliver(self, packet: Packet) -> None:
        if self.dst is None:
            raise RuntimeError(f"link {self.name!r} has no destination attached")
        self.delivered += 1
        self.bytes_delivered += packet.size
        if self.delay == 0:
            self.dst(packet)
        else:
            self.sim.call_later(self.delay, self.dst, packet)


@dataclass
class LinkPhase:
    """One segment of a piecewise-constant link schedule."""

    duration: float
    rate_bps: float
    delay: float
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("phase duration must be positive")
        if self.rate_bps <= 0:
            raise ValueError("phase rate must be positive")


class LinkSchedule:
    """A repeating sequence of :class:`LinkPhase` entries.

    :meth:`random_walk` builds the paper's §7 "rapidly changing network":
    every ``period`` seconds capacity, RTT and loss are redrawn uniformly
    from the given ranges.
    """

    def __init__(self, phases: Sequence[LinkPhase], repeat: bool = True):
        if not phases:
            raise ValueError("schedule needs at least one phase")
        self.phases: List[LinkPhase] = list(phases)
        self.repeat = repeat

    @classmethod
    def random_walk(cls, duration: float, period: float,
                    rate_range_bps: Sequence[float],
                    delay_range: Sequence[float],
                    loss_range: Sequence[float],
                    rng: np.random.Generator) -> "LinkSchedule":
        lo_r, hi_r = rate_range_bps
        lo_d, hi_d = delay_range
        lo_l, hi_l = loss_range
        phases = []
        t = 0.0
        while t < duration:
            phases.append(LinkPhase(
                duration=min(period, duration - t),
                rate_bps=float(rng.uniform(lo_r, hi_r)),
                delay=float(rng.uniform(lo_d, hi_d)),
                loss_rate=float(rng.uniform(lo_l, hi_l)),
            ))
            t += period
        return cls(phases, repeat=False)

    def total_duration(self) -> float:
        return sum(p.duration for p in self.phases)


class VariableLink(Link):
    """A :class:`Link` whose rate/delay/loss follow a :class:`LinkSchedule`.

    Reproduces the micro-evaluation substrate the paper drives with
    ``tc``: a dumbbell bottleneck whose parameters jump every few seconds.
    Changes apply to packets serialised after the change (an in-flight
    serialisation completes at the old rate, as with token-bucket shapers).
    """

    def __init__(self, sim: Simulator, schedule: LinkSchedule,
                 queue: Optional[DropTailQueue] = None,
                 dst: Optional[Destination] = None,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "varlink"):
        first = schedule.phases[0]
        super().__init__(sim, first.rate_bps, first.delay, queue=queue,
                         dst=dst, loss_rate=first.loss_rate, rng=rng, name=name)
        self.schedule = schedule
        self._phase_index = 0
        self.condition_changes = 0
        sim.call_later(first.duration, self._advance_phase)

    def set_conditions(self, rate_bps: float, delay: float, loss_rate: float) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = float(rate_bps)
        self.delay = float(delay)
        self.loss_rate = float(loss_rate)
        self.condition_changes += 1

    def _advance_phase(self) -> None:
        self._phase_index += 1
        if self._phase_index >= len(self.schedule.phases):
            if not self.schedule.repeat:
                return
            self._phase_index = 0
        phase = self.schedule.phases[self._phase_index]
        self.set_conditions(phase.rate_bps, phase.delay, phase.loss_rate)
        self.sim.call_later(phase.duration, self._advance_phase)

    def current_phase(self) -> LinkPhase:
        return self.schedule.phases[self._phase_index]
