"""Topology builders.

The paper's experiments all reduce to a dumbbell: N senders share one
bottleneck (a fixed :class:`~repro.netsim.link.Link`, a schedule-driven
:class:`~repro.netsim.link.VariableLink`, or a cellular
:class:`~repro.netsim.trace_link.TraceLink`), with per-flow access delays on
the forward path and a clean, ample reverse path for acknowledgements.
:class:`Dumbbell` wires protocol endpoints onto that shape.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .engine import Simulator
from .flow import Demux, ReceiverProtocol, SenderProtocol
from .link import DelayLine
from .packet import Packet, PacketPool


@dataclass
class FlowHandle:
    """Bookkeeping for one sender/receiver pair attached to a dumbbell."""

    flow_id: int
    sender: SenderProtocol
    receiver: ReceiverProtocol
    rtt: float
    start_at: float
    stop_at: Optional[float] = None


def pooled_ack_sink(on_ack: Callable[[Packet], None],
                    pool: PacketPool) -> Callable[[Packet], None]:
    """Wrap a sender's ``on_ack`` so every ACK returns to ``pool`` after
    the handler runs.  Safe exactly because the ACK is dead once the
    handler returns: nothing downstream of ``on_ack`` holds it."""
    release = pool.release

    def deliver(packet: Packet) -> None:
        on_ack(packet)
        release(packet)

    return deliver


class Dumbbell:
    """N flows sharing a single bottleneck.

    Parameters
    ----------
    sim:
        The simulation engine.
    bottleneck:
        Any object exposing ``send(packet)`` and a writable ``dst``
        attribute (``Link``, ``VariableLink`` or ``TraceLink``).
    default_rtt:
        Base round-trip propagation delay for flows that do not override it.
        Half is applied on the forward access path (before the bottleneck)
        and half on the reverse acknowledgement path.
    ack_pool:
        When True, each flow gets a per-flow acknowledgement freelist:
        ACKs are recycled after the sender's ``on_ack`` returns.  Leave
        off (the default) when anything on the reverse path retains
        packet references across time — e.g. fault injectors that delay,
        duplicate or replay ACKs.
    """

    def __init__(self, sim: Simulator, bottleneck, default_rtt: float = 0.05,
                 ack_pool: bool = False):
        if default_rtt < 0:
            raise ValueError("default_rtt must be non-negative")
        self.sim = sim
        self.bottleneck = bottleneck
        self.default_rtt = default_rtt
        self.ack_pool = ack_pool
        self.demux = Demux()
        self.bottleneck.dst = self.demux
        self.flows: List[FlowHandle] = []

    def add_flow(self, sender: SenderProtocol, receiver: ReceiverProtocol,
                 rtt: Optional[float] = None, start_at: float = 0.0,
                 stop_at: Optional[float] = None) -> FlowHandle:
        """Attach a flow; the sender starts automatically at ``start_at``."""
        if sender.flow_id != receiver.flow_id:
            raise ValueError("sender and receiver flow ids must match")
        rtt = self.default_rtt if rtt is None else rtt
        if rtt < 0:
            raise ValueError("rtt must be non-negative")

        forward_access = DelayLine(self.sim, rtt / 2.0, dst=self.bottleneck.send)
        if self.ack_pool:
            pool = PacketPool()
            receiver.ack_pool = pool
            ack_sink = pooled_ack_sink(sender.on_ack, pool)
        else:
            ack_sink = sender.on_ack
        reverse_path = DelayLine(self.sim, rtt / 2.0, dst=ack_sink)

        sender.attach(self.sim, forward_access.send)
        receiver.attach(self.sim, reverse_path.send)
        self.demux.register(sender.flow_id, receiver.on_data)

        handle = FlowHandle(sender.flow_id, sender, receiver, rtt, start_at, stop_at)
        self.flows.append(handle)
        self.sim.call_at(max(start_at, self.sim.now), sender.start)
        if stop_at is not None:
            self.sim.call_at(stop_at, sender.stop)
        return handle

    def run(self, duration: float) -> None:
        """Convenience: run the simulation for ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)


class DirectPath:
    """Single flow over a single bottleneck, no contention.

    A lighter-weight wiring used by unit tests and single-flow experiments
    (e.g. the delay-profile evolution of Fig 7).
    """

    def __init__(self, sim: Simulator, bottleneck,
                 sender: SenderProtocol, receiver: ReceiverProtocol,
                 rtt: float = 0.05, ack_pool: bool = False):
        self.sim = sim
        self.bottleneck = bottleneck
        self.sender = sender
        self.receiver = receiver

        forward_access = DelayLine(sim, rtt / 2.0, dst=bottleneck.send)
        if ack_pool:
            pool = PacketPool()
            receiver.ack_pool = pool
            ack_sink = pooled_ack_sink(sender.on_ack, pool)
        else:
            ack_sink = sender.on_ack
        reverse_path = DelayLine(sim, rtt / 2.0, dst=ack_sink)
        bottleneck.dst = receiver.on_data

        sender.attach(sim, forward_access.send)
        receiver.attach(sim, reverse_path.send)

    def run(self, duration: float, start_at: float = 0.0) -> None:
        self.sim.call_at(max(start_at, self.sim.now), self.sender.start)
        self.sim.run(until=self.sim.now + duration)


class OnOffSource(SenderProtocol):
    """Constant-bit-rate source with optional ON/OFF duty cycle.

    Used by the §3 channel-study experiments: "the first user is constantly
    receiving at a fixed rate (1, 5, 10 Mbps) while the second user is set to
    operate in ON/OFF periods of one minute intervals receiving at 10 Mbps."
    The source ignores acknowledgements — it is open-loop by design.
    """

    def __init__(self, flow_id: int, rate_bps: float, packet_size: int = 1400,
                 on_period: Optional[float] = None,
                 off_period: Optional[float] = None,
                 start_on: bool = True):
        super().__init__(flow_id)
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        if (on_period is None) != (off_period is None):
            raise ValueError("set both on_period and off_period, or neither")
        self.rate_bps = rate_bps
        self.packet_size = packet_size
        self.on_period = on_period
        self.off_period = off_period
        self.is_on = start_on
        self._seq = 0
        self.interval = packet_size * 8.0 / rate_bps

    def start(self) -> None:
        super().start()
        if self.on_period is not None:
            period = self.on_period if self.is_on else self.off_period
            self.sim.call_later(period, self._toggle)
        self._emit()

    def _toggle(self) -> None:
        if not self.running:
            return
        self.is_on = not self.is_on
        period = self.on_period if self.is_on else self.off_period
        self.sim.call_later(period, self._toggle)

    def _emit(self) -> None:
        if not self.running:
            return
        if self.is_on:
            packet = Packet(flow_id=self.flow_id, seq=self._seq,
                            size=self.packet_size, sent_time=self.now)
            self._seq += 1
            self.send(packet)
        self.sim.call_later(self.interval, self._emit)

    def on_ack(self, packet: Packet) -> None:
        """Open-loop source: acknowledgements are ignored."""


class SinkReceiver(ReceiverProtocol):
    """Receiver that records deliveries but never acknowledges."""

    def on_data(self, packet: Packet) -> None:
        self._record(packet)
