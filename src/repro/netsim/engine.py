"""Discrete-event simulation engine.

The engine is a classic heap-based event scheduler.  All network elements
(links, queues, protocol endpoints, traffic sources) schedule callbacks on a
shared :class:`Simulator` instance.  Simulated time is a float measured in
seconds; there is no wall-clock coupling, which sidesteps the timing-precision
problems a real-time Python implementation of Verus would have.

Events fire in non-decreasing time order.  Ties are broken by scheduling
order (FIFO among simultaneous events), which makes runs fully deterministic
for a fixed seed.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class Event:
    """Handle for a scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled.
    A cancelled event stays in the heap but is skipped when popped.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time: float, callback: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        self.cancelled = True

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} [{state}]>"


class Simulator:
    """Heap-based discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        # Conformance seam: callables invoked as fn(time) just before each
        # event fires (see repro.check).  Empty for normal runs, so the
        # only steady-state cost is one falsy check per event.
        self._monitors: List[Callable[[float], Any]] = []

    # ------------------------------------------------------------------
    # Monitoring (conformance seam)
    # ------------------------------------------------------------------
    def add_monitor(self, fn: Callable[[float], Any]) -> None:
        """Register ``fn(event_time)`` to run before every event fires.

        Used by :mod:`repro.check` to audit scheduler behaviour (monotone
        clock, event accounting) without touching the hot path when no
        monitor is attached.  Monitors must not schedule or cancel events.
        """
        self._monitors.append(fn)

    def remove_monitor(self, fn: Callable[[float], Any]) -> None:
        """Detach a monitor previously registered with :meth:`add_monitor`."""
        self._monitors.remove(fn)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, callback, *args)

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self.now})"
            )
        event = Event(time, callback, args)
        heapq.heappush(self._heap, (time, next(self._counter), event))
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or stop().

        ``until`` is inclusive: an event scheduled exactly at ``until`` fires.
        After running with ``until``, ``now`` is advanced to ``until`` even if
        the heap drained earlier, so repeated ``run`` calls see monotone time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        count = 0
        try:
            while self._heap:
                time, _, event = self._heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._heap)
                if event.cancelled:
                    continue
                if self._monitors:
                    for monitor in self._monitors:
                        monitor(time)
                self.now = time
                event.callback(*event.args)
                self.events_processed += 1
                count += 1
                if self._stopped:
                    break
                if max_events is not None and count >= max_events:
                    break
        finally:
            self._running = False
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        while self._heap:
            time, _, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if self._monitors:
                for monitor in self._monitors:
                    monitor(time)
            self.now = time
            event.callback(*event.args)
            self.events_processed += 1
            return True
        return False

    def stop(self) -> None:
        """Stop the current ``run`` after the in-flight callback returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for _, _, e in self._heap if not e.cancelled)

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is empty.

        Cancelled events linger in the heap until popped, so probe the
        smallest few first (``nsmallest`` is O(n) vs a full sort's
        O(n log n)) and only fall back to scanning everything when the
        head of the heap is all corpses.
        """
        for time, _, event in heapq.nsmallest(16, self._heap):
            if not event.cancelled:
                return time
        for time, _, event in sorted(self._heap):
            if not event.cancelled:
                return time
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={len(self._heap)}>"


class PeriodicTimer:
    """Repeating timer built on any :class:`~repro.netsim.flow.Clock`.

    Fires ``callback()`` every ``interval`` seconds until :meth:`stop`.
    The first firing occurs ``interval`` seconds after :meth:`start`
    (or immediately if ``fire_now`` is set).  Only ``sim.schedule`` is
    used, so the timer runs unchanged on the discrete-event
    :class:`Simulator` and on the wall-clock scheduler of
    :mod:`repro.live`.
    """

    def __init__(self, sim, interval: float, callback: Callable[[], Any]):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive (got {interval})")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._event: Optional[Event] = None
        self._running = False

    def start(self, fire_now: bool = False) -> None:
        self._running = True
        delay = 0.0 if fire_now else self.interval
        self._event = self.sim.schedule(delay, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        return self._running

    def _fire(self) -> None:
        if not self._running:
            return
        self.callback()
        if self._running:
            self._event = self.sim.schedule(self.interval, self._fire)
