"""Discrete-event simulation engine.

The engine is a classic heap-based event scheduler.  All network elements
(links, queues, protocol endpoints, traffic sources) schedule callbacks on a
shared :class:`Simulator` instance.  Simulated time is a float measured in
seconds; there is no wall-clock coupling, which sidesteps the timing-precision
problems a real-time Python implementation of Verus would have.

Events fire in non-decreasing time order.  Ties are broken by scheduling
order (FIFO among simultaneous events), which makes runs fully deterministic
for a fixed seed.

Performance notes
-----------------
Heap entries are 5-tuples ``(time, seq, event_or_None, callback, args)``.
Callers that never cancel use :meth:`Simulator.call_later` /
:meth:`Simulator.call_at`, which skip the :class:`Event` allocation
entirely (the third slot is ``None``); :meth:`Simulator.schedule` /
:meth:`Simulator.schedule_at` still return a cancellable handle.  Both
paths draw ``seq`` from the same counter, so mixing them preserves the
FIFO tie-break exactly.  Cancelled events stay in the heap as corpses
but are counted (``_corpses``), which makes :meth:`Simulator.pending`
O(1) and lets the heap be compacted in place once corpses outnumber
live entries.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised when the simulation is driven in an inconsistent way."""


class Event:
    """Handle for a scheduled callback.

    Events are returned by :meth:`Simulator.schedule` and may be cancelled.
    A cancelled event stays in the heap but is skipped when popped.  The
    ``_sim`` backreference is non-None exactly while the event sits live
    in a simulator heap; it is cleared when the event fires, is
    cancelled, or is swept out by compaction, so the corpse counter never
    double-counts.
    """

    __slots__ = ("time", "callback", "args", "cancelled", "_sim")

    def __init__(self, time: float, callback: Callable[..., Any],
                 args: Tuple[Any, ...], sim: "Optional[Simulator]" = None):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing.  Safe to call more than once."""
        if not self.cancelled:
            self.cancelled = True
            sim = self._sim
            if sim is not None:
                self._sim = None
                sim._note_cancel()

    @property
    def active(self) -> bool:
        """True while the event is still pending and not cancelled."""
        return not self.cancelled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} {name} [{state}]>"


# Compaction threshold: sweep the heap in place once cancelled corpses
# outnumber live entries, but never bother below this size — tiny heaps
# drain corpses naturally through pops.
_COMPACT_MIN_HEAP = 64


class Simulator:
    """Heap-based discrete-event scheduler.

    Usage::

        sim = Simulator()
        sim.schedule(1.5, print, "fires at t=1.5")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[tuple] = []
        self._counter = itertools.count()
        self._running = False
        self._stopped = False
        self.events_processed: int = 0
        #: Cancelled events still sitting in the heap.  Kept exact so
        #: ``pending()`` is O(1) and compaction knows when to trigger.
        self._corpses: int = 0
        # Conformance seam: callables invoked as fn(time) just before each
        # event fires (see repro.check).  Empty for normal runs, so the
        # only steady-state cost is one falsy check per event.
        self._monitors: List[Callable[[float], Any]] = []

    # ------------------------------------------------------------------
    # Monitoring (conformance seam)
    # ------------------------------------------------------------------
    def add_monitor(self, fn: Callable[[float], Any]) -> None:
        """Register ``fn(event_time)`` to run before every event fires.

        Used by :mod:`repro.check` to audit scheduler behaviour (monotone
        clock, event accounting) without touching the hot path when no
        monitor is attached.  Monitors must not schedule or cancel events.
        """
        self._monitors.append(fn)

    def remove_monitor(self, fn: Callable[[float], Any]) -> None:
        """Detach a monitor previously registered with :meth:`add_monitor`."""
        self._monitors.remove(fn)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        time = self.now + delay
        event = Event(time, callback, args, self)
        heapq.heappush(self._heap,
                       (time, next(self._counter), event, callback, args))
        return event

    def schedule_at(self, time: float, callback: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at an absolute simulation time."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self.now})"
            )
        event = Event(time, callback, args, self)
        heapq.heappush(self._heap,
                       (time, next(self._counter), event, callback, args))
        return event

    def call_later(self, delay: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast path of :meth:`schedule` for callbacks that are never
        cancelled: no :class:`Event` handle is allocated, only the heap
        tuple.  Ordering is identical to ``schedule`` — both draw their
        tie-break sequence number from the same counter."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(self._heap,
                       (self.now + delay, next(self._counter), None, callback, args))

    def call_at(self, time: float, callback: Callable[..., Any], *args: Any) -> None:
        """Fast path of :meth:`schedule_at` (no cancellable handle)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past (t={time} < now={self.now})"
            )
        heapq.heappush(self._heap,
                       (time, next(self._counter), None, callback, args))

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap drains, ``until`` is reached, or stop().

        ``until`` is inclusive: an event scheduled exactly at ``until`` fires.
        After running with ``until``, ``now`` is advanced to ``until`` even if
        the heap drained earlier, so repeated ``run`` calls see monotone time.
        """
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        self._stopped = False
        # Hot loop: everything it touches per event is a local.  The
        # monitor check is one truthiness test on a (normally empty) local
        # list, which is the zero-monitor fast path; ``events_processed``
        # accumulates locally and is flushed in ``finally`` (nothing reads
        # it mid-run).  ``limit``/``stop_after`` turn the optional
        # arguments into unconditional comparisons.
        heap = self._heap
        pop = heapq.heappop
        push = heapq.heappush
        monitors = self._monitors
        limit = float("inf") if until is None else until
        stop_after = -1 if max_events is None else max(1, max_events)
        processed = 0
        try:
            while heap:
                entry = pop(heap)
                time = entry[0]
                if time > limit:
                    push(heap, entry)
                    break
                event = entry[2]
                if event is not None:
                    if event.cancelled:
                        self._corpses -= 1
                        continue
                    event._sim = None
                if monitors:
                    for monitor in monitors:
                        monitor(time)
                self.now = time
                entry[3](*entry[4])
                processed += 1
                if self._stopped or processed == stop_after:
                    break
        finally:
            self._running = False
            self.events_processed += processed
        if until is not None and not self._stopped and self.now < until:
            self.now = until

    def step(self) -> bool:
        """Execute the single next pending event.  Returns False if none."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[2]
            if event is not None:
                if event.cancelled:
                    self._corpses -= 1
                    continue
                event._sim = None
            time = entry[0]
            if self._monitors:
                for monitor in self._monitors:
                    monitor(time)
            self.now = time
            entry[3](*entry[4])
            self.events_processed += 1
            return True
        return False

    def stop(self) -> None:
        """Stop the current ``run`` after the in-flight callback returns."""
        self._stopped = True

    # ------------------------------------------------------------------
    # Corpse accounting
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`Event.cancel` while the event is still heaped."""
        self._corpses += 1
        heap_len = len(self._heap)
        if heap_len >= _COMPACT_MIN_HEAP and self._corpses * 2 > heap_len:
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled corpses and re-heapify, in place.

        In place matters: ``run()`` holds a local alias to the heap list,
        so the list object must survive compaction.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap
                   if entry[2] is None or not entry[2].cancelled]
        heapq.heapify(heap)
        self._corpses = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return len(self._heap) - self._corpses

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None if the heap is empty.

        Cancelled corpses at the head of the heap are popped and
        discarded on the way — they could never fire anyway, so evicting
        them here is invisible to the schedule and keeps repeated peeks
        amortised O(log n) instead of rescanning the same corpses.
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            event = entry[2]
            if event is None or not event.cancelled:
                return entry[0]
            heapq.heappop(heap)
            self._corpses -= 1
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self.now:.6f} pending={len(self._heap)}>"


class PeriodicTimer:
    """Repeating timer built on any :class:`~repro.netsim.flow.Clock`.

    Fires ``callback()`` every ``interval`` seconds until :meth:`stop`.
    The first firing occurs ``interval`` seconds after :meth:`start`
    (or immediately if ``fire_now`` is set).  Only ``sim.schedule`` is
    used, so the timer runs unchanged on the discrete-event
    :class:`Simulator` and on the wall-clock scheduler of
    :mod:`repro.live`.
    """

    def __init__(self, sim, interval: float, callback: Callable[[], Any]):
        if interval <= 0:
            raise SimulationError(f"timer interval must be positive (got {interval})")
        self.sim = sim
        self.interval = interval
        self.callback = callback
        self._event: Optional[Event] = None
        self._running = False

    def start(self, fire_now: bool = False) -> None:
        self._running = True
        delay = 0.0 if fire_now else self.interval
        self._event = self.sim.schedule(delay, self._fire)

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    @property
    def running(self) -> bool:
        return self._running

    def _fire(self) -> None:
        if not self._running:
            return
        self.callback()
        if self._running:
            self._event = self.sim.schedule(self.interval, self._fire)
