"""Live path: run the unchanged protocol objects over real UDP sockets.

The simulator exercises every congestion controller in simulated time;
this package closes the gap to the paper's real-network evaluation by
moving the *same* protocol instances onto localhost UDP datagrams:

* :mod:`repro.live.wire` — versioned datagram serialisation of
  :class:`~repro.netsim.packet.Packet`;
* :mod:`repro.live.clock` — a wall-clock implementation of the
  :class:`~repro.netsim.flow.Clock` scheduling interface on top of the
  asyncio event loop;
* :mod:`repro.live.host` — UDP endpoints adapting
  ``SenderProtocol``/``ReceiverProtocol`` to socket I/O;
* :mod:`repro.live.emulator` — a mahimahi-style userspace link emulator
  whose delivery opportunities come from a replayed trace or a live
  :class:`~repro.cellular.channel_model.ChannelStepper`;
* :mod:`repro.live.session` — a driver that wires sender, emulator and
  receiver together and returns the same
  :class:`~repro.experiments.runner.ExperimentResult` shape the
  simulator produces, so sim-vs-live comparisons are one function call.
"""

from .clock import WallClock, WallEvent
from .emulator import EmulatorStats, LinkEmulator
from .host import LiveHost, StallEvent
from .session import LiveSessionError, run_live_session
from .wire import (
    WIRE_VERSION,
    WireChecksumError,
    WireFormatError,
    WireTruncatedError,
    decode_packet,
    encode_packet,
    header_size,
)

__all__ = [
    "EmulatorStats",
    "LinkEmulator",
    "LiveHost",
    "LiveSessionError",
    "StallEvent",
    "WallClock",
    "WallEvent",
    "WIRE_VERSION",
    "WireChecksumError",
    "WireFormatError",
    "WireTruncatedError",
    "decode_packet",
    "encode_packet",
    "header_size",
    "run_live_session",
]
