"""Versioned wire format: ``Packet`` <-> UDP datagram.

The format is deliberately dumb: one fixed-size big-endian header
carrying exactly the :class:`~repro.netsim.packet.Packet` fields the
protocols consume, an optional JSON blob for the free-form ``payload``
slot (Sprout forecasts, aggregated-ACK batches), and zero padding up to
the packet's declared wire size so a DATA datagram occupies as many
bytes on the loopback as its simulated counterpart claims to.

Version 2 hardens the parse path so a corrupted datagram fails
*deterministically* instead of producing a garbage ``Packet``:

* the header ends in a CRC-32 computed over the **entire datagram**
  (with the checksum field zeroed), so any bit flip — header, payload
  or padding — is caught;
* the datagram length must equal exactly what the header declares
  (``max(header + payload_len, min(size, MAX_DATAGRAM))``), so
  truncation and length-field corruption are caught even before the
  checksum;
* a JSON payload must decode to a dict (the only shape protocols emit).

Failures raise :class:`WireFormatError` — with :class:`WireTruncatedError`
and :class:`WireChecksumError` subclasses so receivers can account
truncations and corruptions separately — and never ``struct.error`` or
``KeyError``.  Decoders reject unknown magics outright and refuse any
version other than their own, so a v1 peer fails loudly against a v2
receiver instead of silently mis-parsing.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Optional

from ..netsim.packet import Packet

#: Magic tag opening every datagram.
WIRE_MAGIC = b"VRS!"
#: Current wire format version.
WIRE_VERSION = 2

#: Largest payload a UDP datagram can carry; datagrams are never padded
#: beyond this.
MAX_DATAGRAM = 65507

_FLAG_ACK = 1 << 0
_FLAG_RETRANSMISSION = 1 << 1
_FLAG_ECN = 1 << 2
_FLAG_PAYLOAD = 1 << 3

# magic, version, flags, flow_id, seq, ack_seq, sent_time,
# echo_sent_time, window_at_send, size, payload_len, checksum
_HEADER = struct.Struct("!4sBBHqqdddIHI")
#: Offset of the trailing u32 checksum field inside the header.
_CHECKSUM_OFFSET = _HEADER.size - 4


class WireFormatError(ValueError):
    """Raised when a datagram cannot be parsed as a protocol packet."""


class WireTruncatedError(WireFormatError):
    """The datagram is shorter than its header declares."""


class WireChecksumError(WireFormatError):
    """The datagram's CRC-32 does not match its contents."""


def header_size() -> int:
    """Size in bytes of the fixed packet header."""
    return _HEADER.size


def datagram_checksum(data: bytes) -> int:
    """CRC-32 of a datagram with its checksum field zeroed."""
    blanked = (data[:_CHECKSUM_OFFSET] + b"\x00\x00\x00\x00"
               + data[_HEADER.size:])
    return zlib.crc32(blanked) & 0xFFFFFFFF


def encode_packet(packet: Packet) -> bytes:
    """Serialise ``packet`` into a datagram.

    The datagram is padded with zeros up to ``packet.size`` (the size the
    protocols account with) so live throughput numbers measure real bytes
    moved.  Packets whose declared size is smaller than the header — bare
    40-byte ACKs — are sent unpadded; their declared size still travels
    in the header and is what the receiving side records.
    """
    flags = 0
    if packet.is_ack:
        flags |= _FLAG_ACK
    if packet.retransmission:
        flags |= _FLAG_RETRANSMISSION
    if packet.ecn:
        flags |= _FLAG_ECN
    payload = b""
    if packet.payload is not None:
        flags |= _FLAG_PAYLOAD
        payload = json.dumps(packet.payload, separators=(",", ":")).encode()
        if len(payload) > MAX_DATAGRAM - _HEADER.size:
            raise WireFormatError(
                f"payload of {len(payload)} bytes does not fit a datagram")
    header = _HEADER.pack(
        WIRE_MAGIC, WIRE_VERSION, flags,
        packet.flow_id & 0xFFFF, packet.seq, packet.ack_seq,
        packet.sent_time, packet.echo_sent_time, packet.window_at_send,
        packet.size, len(payload), 0)
    datagram = bytearray(header + payload)
    target = min(packet.size, MAX_DATAGRAM)
    if len(datagram) < target:
        datagram += b"\x00" * (target - len(datagram))
    crc = zlib.crc32(datagram) & 0xFFFFFFFF   # checksum field is still 0
    struct.pack_into("!I", datagram, _CHECKSUM_OFFSET, crc)
    return bytes(datagram)


def decode_packet(data: bytes) -> Packet:
    """Parse a datagram produced by :func:`encode_packet`.

    Raises :class:`WireTruncatedError` for short datagrams,
    :class:`WireChecksumError` for bit corruption, and plain
    :class:`WireFormatError` for everything else — never ``struct.error``
    or a garbage ``Packet``.
    """
    if len(data) < _HEADER.size:
        raise WireTruncatedError(
            f"datagram of {len(data)} bytes is shorter than the "
            f"{_HEADER.size}-byte header")
    (magic, version, flags, flow_id, seq, ack_seq, sent_time,
     echo_sent_time, window_at_send, size, payload_len,
     checksum) = _HEADER.unpack_from(data)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {magic!r}")
    if version > WIRE_VERSION:
        raise WireFormatError(
            f"wire version {version} is newer than supported ({WIRE_VERSION})")
    if version < WIRE_VERSION:
        raise WireFormatError(
            f"wire version {version} is older than supported ({WIRE_VERSION})")
    expected = max(_HEADER.size + payload_len, min(size, MAX_DATAGRAM))
    if len(data) < expected:
        raise WireTruncatedError(
            f"datagram of {len(data)} bytes, header declares {expected}")
    if len(data) > expected:
        raise WireFormatError(
            f"datagram of {len(data)} bytes exceeds declared {expected}")
    if datagram_checksum(data) != checksum:
        raise WireChecksumError("datagram failed its CRC-32 check")
    payload: Optional[dict] = None
    if flags & _FLAG_PAYLOAD:
        raw = data[_HEADER.size:_HEADER.size + payload_len]
        try:
            payload = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireFormatError(f"bad payload: {exc}") from exc
        if not isinstance(payload, dict):
            raise WireFormatError(
                f"payload must be a JSON object, got {type(payload).__name__}")
    return Packet(
        flow_id=flow_id,
        seq=seq,
        size=size,
        sent_time=sent_time,
        is_ack=bool(flags & _FLAG_ACK),
        ack_seq=ack_seq,
        echo_sent_time=echo_sent_time,
        window_at_send=window_at_send,
        retransmission=bool(flags & _FLAG_RETRANSMISSION),
        ecn=bool(flags & _FLAG_ECN),
        payload=payload,
    )
