"""Userspace cellular link emulator over localhost UDP.

The mahimahi design (also used by the C2TCP and ABC evaluations): a
middlebox process with two sockets forwards real datagrams between a
sender and a receiver, releasing queued data packets only at
*delivery opportunities* — each opportunity carries one MTU, unused
opportunities are wasted — so the loopback path exhibits the same
"use it or lose it" capacity process as the simulator's
:class:`~repro.netsim.trace_link.TraceLink`.

Opportunities come from either a replayed trace (an array of timestamps,
e.g. from :func:`repro.cellular.trace_io.load_trace` or
:func:`~repro.cellular.scenarios.generate_scenario_trace`, looped when
the session outlives it) or a live
:class:`~repro.cellular.channel_model.ChannelStepper`, which draws the
channel forward in chunks as wall time advances.

Datagrams are decoded at ingress so the *real* queue disciplines from
:mod:`repro.netsim.queues` (drop-tail, the paper's RED configuration)
bound the buffer, and re-encoded on release.  Stochastic loss matches
``TraceLink``'s residual-loss model; the optional ``impairment`` hook
accepts the wrappers from :mod:`repro.netsim.impairments` — they treat
packets opaquely and schedule through the shared
:class:`~repro.live.clock.WallClock`, so the simulator's jitter /
reordering / duplication generators work unmodified on the live path.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from ..cellular.channel_model import ChannelStepper
from ..netsim.packet import MTU_BYTES, Packet
from ..netsim.queues import DropTailQueue
from .clock import WallClock
from .wire import WireFormatError, decode_packet, encode_packet

Address = Tuple[str, int]


@dataclass
class EmulatorStats:
    """Counters describing one emulator session."""

    data_in: int = 0
    delivered: int = 0
    bytes_delivered: int = 0
    wasted_opportunities: int = 0
    stochastic_losses: int = 0
    acks_forwarded: int = 0
    decode_errors: int = 0
    #: Datagrams deliberately damaged by an injected corruption fault.
    mangled: int = 0
    #: ACK datagrams dropped by an injected uplink blackout.
    uplink_blackout_drops: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)


class _Socket(asyncio.DatagramProtocol):
    def __init__(self, on_datagram):
        self.on_datagram = on_datagram

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.on_datagram(data, addr)


class LinkEmulator:
    """Forwards UDP datagrams through an emulated cellular downlink.

    Topology (all localhost)::

        sender --> [ingress socket] queue --opportunities--> [egress socket] --> receiver
               <-- [ingress socket] <------uplink delay----- [egress socket] <--

    Parameters
    ----------
    clock:
        The session's shared :class:`WallClock`; opportunity instants are
        absolute session times on this clock.
    trace:
        Replayed delivery-opportunity timestamps (seconds from session
        start), or a path to a trace file — mahimahi ``.pps``,
        newline-seconds or CSV rate series, auto-detected via
        :mod:`repro.traces.formats`.  Looped cyclically, like
        ``TraceLink``: on wraparound the next cycle continues ``gap_s``
        after the last opportunity (no dead span equal to the trace's
        first timestamp).
    stepper:
        Live channel generator; mutually exclusive with ``trace``.
    receiver:
        Where released data packets are sent.
    queue:
        Bounded queue discipline holding packets between arrival and
        release (default: drop-tail).
    downlink_delay:
        Fixed delay between a delivery opportunity releasing a packet and
        the datagram being written towards the receiver (the simulator's
        forward access path plus ``TraceLink`` core-network delay).
    uplink_delay:
        Fixed delay applied to reverse-path (ACK) datagrams.
    loss_rate:
        Residual stochastic loss applied per released data packet.
    impairment:
        Optional wrapper from :mod:`repro.netsim.impairments` constructed
        with this emulator's clock; its ``dst`` is set to the emulator's
        delivery tail and it replaces the plain downlink delay.
    faults:
        Optional downlink :class:`~repro.faults.injector.FaultInjector`
        (built with ``byte_corruption=True`` and this emulator's clock).
        Like ``impairment`` it replaces the plain downlink delay for
        packet-level faults (outages, burst loss, duplication, reorder
        storms), and additionally its :meth:`mangle` hook damages the
        *encoded* datagram at the delivery tail so corruption exercises
        the receiver's real parse path.  Mutually exclusive with
        ``impairment``.
    uplink_faults:
        Optional up-direction injector; only its blackout windows apply —
        ACK datagrams are dropped (and counted) while the uplink is dark.
    """

    def __init__(self, clock: WallClock,
                 trace: Optional[Sequence[float]] = None,
                 stepper: Optional[ChannelStepper] = None,
                 queue: Optional[DropTailQueue] = None,
                 downlink_delay: float = 0.010,
                 uplink_delay: float = 0.005,
                 loss_rate: float = 0.0,
                 bytes_per_opportunity: int = MTU_BYTES,
                 rng: Optional[np.random.Generator] = None,
                 stepper_chunk: float = 0.25,
                 gap_s: float = 0.001,
                 impairment=None,
                 faults=None,
                 uplink_faults=None):
        if (trace is None) == (stepper is None):
            raise ValueError("provide exactly one of trace or stepper")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1) (got {loss_rate})")
        if downlink_delay < 0 or uplink_delay < 0:
            raise ValueError("delays must be non-negative")
        if gap_s <= 0:
            raise ValueError(f"gap_s must be positive (got {gap_s})")
        self.clock = clock
        self.stepper = stepper
        self.gap_s = float(gap_s)
        self.times: Optional[np.ndarray] = None
        if trace is not None:
            if isinstance(trace, (str, bytes)) or hasattr(trace, "__fspath__"):
                # Deferred import: repro.traces pulls in the campaign
                # layer, which the live path must not load eagerly.
                from ..traces.formats import read_trace_seconds
                arr = read_trace_seconds(trace)
            else:
                arr = np.asarray(trace, dtype=float)
            if arr.size == 0:
                raise ValueError("trace must contain at least one opportunity")
            if np.any(np.diff(arr) < 0):
                raise ValueError("trace timestamps must be sorted")
            self.times = arr
        self.queue = queue if queue is not None else DropTailQueue()
        self.downlink_delay = downlink_delay
        self.uplink_delay = uplink_delay
        self.loss_rate = loss_rate
        self.bytes_per_opportunity = int(bytes_per_opportunity)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stepper_chunk = stepper_chunk
        if impairment is not None and faults is not None:
            raise ValueError("impairment and faults are mutually exclusive; "
                             "express the impairment as a fault event")
        self.impairment = impairment
        if impairment is not None:
            impairment.dst = self._deliver_tail
        self.faults = faults
        if faults is not None:
            faults.dst = self._deliver_tail
        self.uplink_faults = uplink_faults
        self.stats = EmulatorStats()
        self.sender_addr: Optional[Address] = None
        self.receiver_addr: Optional[Address] = None
        self._ingress: Optional[asyncio.DatagramTransport] = None
        self._egress: Optional[asyncio.DatagramTransport] = None
        self._index = 0
        self._cycle = 0
        self._running = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def open(self, host: str = "127.0.0.1") -> Tuple[Address, Address]:
        """Bind both sockets; returns (ingress_addr, egress_addr)."""
        loop = asyncio.get_running_loop()
        self._ingress, _ = await loop.create_datagram_endpoint(
            lambda: _Socket(self._on_ingress), local_addr=(host, 0))
        self._egress, _ = await loop.create_datagram_endpoint(
            lambda: _Socket(self._on_egress), local_addr=(host, 0))
        return self.ingress_addr, self.egress_addr

    @property
    def ingress_addr(self) -> Address:
        """The sender-facing address."""
        if self._ingress is None:
            raise RuntimeError("emulator not open")
        return self._ingress.get_extra_info("sockname")[:2]

    @property
    def egress_addr(self) -> Address:
        """The receiver-facing address."""
        if self._egress is None:
            raise RuntimeError("emulator not open")
        return self._egress.get_extra_info("sockname")[:2]

    def start(self, receiver: Address) -> None:
        """Begin scheduling delivery opportunities towards ``receiver``."""
        if self._running:
            raise RuntimeError("emulator already started")
        self.receiver_addr = receiver
        self._running = True
        if self.stepper is not None:
            # Stay one chunk ahead of wall time so opportunities are
            # always scheduled into the future.
            self._schedule_chunk()
            self._schedule_chunk()
        else:
            self._schedule_next_replay()

    def stop(self) -> None:
        self._running = False

    def close(self) -> None:
        self.stop()
        for transport in (self._ingress, self._egress):
            if transport is not None:
                transport.close()
        self._ingress = self._egress = None

    # ------------------------------------------------------------------
    # Opportunity scheduling
    # ------------------------------------------------------------------
    def _schedule_next_replay(self) -> None:
        """Trace mode: schedule the next opportunity, looping the trace."""
        if not self._running or self.times is None:
            return
        if self._index >= self.times.size:
            self._index = 0
            self._cycle += 1
        # Same wraparound seam as TraceLink: the next cycle continues
        # gap_s after the last opportunity, not after a dead span equal
        # to the trace's first timestamp.
        period = float(self.times[-1] - self.times[0]) + self.gap_s
        when = self._cycle * period + float(self.times[self._index])
        self._index += 1
        self.clock.call_later(max(0.0, when - self.clock.now),
                              self._opportunity_replay)

    def _opportunity_replay(self) -> None:
        if not self._running:
            return
        self._opportunity()
        self._schedule_next_replay()

    def _schedule_chunk(self) -> None:
        """Stepper mode: draw one chunk of channel and schedule it."""
        if not self._running or self.stepper is None:
            return
        start = self.stepper.now
        for when in self.stepper.advance(self.stepper_chunk):
            self.clock.call_later(max(0.0, float(when) - self.clock.now),
                                  self._opportunity)
        # Refill when wall time reaches the start of the chunk just
        # drawn, keeping exactly one undrawn chunk of headroom.
        self.clock.call_later(max(0.0, start - self.clock.now),
                              self._schedule_chunk)

    def _opportunity(self) -> None:
        """One delivery opportunity: release up to one MTU of queued data."""
        if not self._running:
            return
        budget = self.bytes_per_opportunity
        served_any = False
        while budget > 0:
            head = self.queue.peek()
            if head is None or head.size > budget:
                break
            packet = self.queue.pop(self.clock.now)
            budget -= packet.size
            served_any = True
            self._release(packet)
        if not served_any:
            self.stats.wasted_opportunities += 1

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _on_ingress(self, data: bytes, addr: Address) -> None:
        """Sender-facing socket: queue data packets for the downlink."""
        self.sender_addr = addr
        try:
            packet = decode_packet(data)
        except WireFormatError:
            self.stats.decode_errors += 1
            return
        self.stats.data_in += 1
        self.queue.push(packet, self.clock.now)

    def _release(self, packet: Packet) -> None:
        """A packet won an opportunity: lose, impair, or deliver it."""
        if self.loss_rate > 0.0 and self.rng.random() < self.loss_rate:
            self.stats.stochastic_losses += 1
            return
        if self.faults is not None:
            self.faults.send(packet)
        elif self.impairment is not None:
            self.impairment.send(packet)
        elif self.downlink_delay > 0:
            self.clock.call_later(self.downlink_delay, self._deliver_tail, packet)
        else:
            self._deliver_tail(packet)

    def _deliver_tail(self, packet: Packet) -> None:
        if self._egress is None or self.receiver_addr is None:
            return
        data = encode_packet(packet)
        if self.faults is not None:
            damaged = self.faults.mangle(data)
            if damaged is not data:
                self.stats.mangled += 1
                data = damaged
        self._egress.sendto(data, self.receiver_addr)
        self.stats.delivered += 1
        self.stats.bytes_delivered += packet.size

    def _on_egress(self, data: bytes, addr: Address) -> None:
        """Receiver-facing socket: forward ACKs upstream after a delay.

        The reverse path is a plain delay line, as in the simulator's
        dumbbell — ACK bytes are forwarded verbatim, never re-encoded.
        """
        if self.sender_addr is None:
            return
        if self.uplink_faults is not None and self.uplink_faults.blocked():
            self.stats.uplink_blackout_drops += 1
            return
        self.stats.acks_forwarded += 1
        if self.uplink_delay > 0:
            self.clock.call_later(self.uplink_delay, self._forward_ack, data)
        else:
            self._forward_ack(data)

    def _forward_ack(self, data: bytes) -> None:
        if self._ingress is not None and self.sender_addr is not None:
            self._ingress.sendto(data, self.sender_addr)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LinkEmulator delivered={self.stats.delivered} "
                f"queued={len(self.queue)}>")
