"""UDP endpoint hosting protocol objects — the live counterpart of the
simulator's :class:`~repro.netsim.topology.Dumbbell` wiring.

A :class:`LiveHost` owns one UDP socket and any number of protocol
endpoints (all senders, or all receivers — one host per side of the
path).  It adapts the two directions of the
``attach(clock, tx)`` contract:

* outbound: the transmit callable handed to each endpoint serialises
  the packet with :mod:`repro.live.wire` and writes it to the socket;
* inbound: every received datagram is parsed and demultiplexed by
  ``flow_id`` to the owning endpoint — ACKs to ``sender.on_ack``, data
  to ``receiver.on_data`` — exactly the routing
  :class:`~repro.netsim.flow.Demux` performs inside the simulator.

The protocol objects themselves are untouched: the same ``VerusSender``
instance that runs inside :class:`~repro.netsim.engine.Simulator` runs
here, scheduling its epoch timer on the shared :class:`WallClock`.
"""

from __future__ import annotations

import asyncio
from typing import Dict, Optional, Tuple

from ..netsim.flow import ReceiverProtocol, SenderProtocol
from ..netsim.packet import Packet
from .clock import WallClock
from .wire import WireFormatError, decode_packet, encode_packet

Address = Tuple[str, int]


class _DatagramBridge(asyncio.DatagramProtocol):
    """Minimal asyncio glue: forwards datagrams to the host."""

    def __init__(self, host: "LiveHost"):
        self.host = host

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.host._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.host.socket_errors += 1


class LiveHost:
    """Hosts protocol endpoints on one UDP socket.

    ``peer`` is where outbound packets go.  A sender host points at the
    emulator's ingress; a receiver host usually passes ``peer=None`` and
    learns the return address from the first datagram it receives (its
    ACKs then flow back through whatever middlebox delivered the data,
    mahimahi-style).
    """

    def __init__(self, clock: WallClock, peer: Optional[Address] = None,
                 name: str = "host"):
        self.clock = clock
        self.name = name
        self.peer = peer
        self._learn_peer = peer is None
        self.senders: Dict[int, SenderProtocol] = {}
        self.receivers: Dict[int, ReceiverProtocol] = {}
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.datagrams_in = 0
        self.datagrams_out = 0
        self.decode_errors = 0
        self.unroutable = 0
        self.socket_errors = 0

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------
    async def open(self, local_addr: Address = ("127.0.0.1", 0)) -> Address:
        """Bind the UDP socket; returns the bound (host, port)."""
        if self._transport is not None:
            raise RuntimeError(f"{self.name}: socket already open")
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _DatagramBridge(self), local_addr=local_addr)
        return self.local_addr

    @property
    def local_addr(self) -> Address:
        if self._transport is None:
            raise RuntimeError(f"{self.name}: socket not open")
        return self._transport.get_extra_info("sockname")[:2]

    def close(self) -> None:
        for sender in self.senders.values():
            if sender.running:
                sender.stop()
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # ------------------------------------------------------------------
    # Endpoint wiring
    # ------------------------------------------------------------------
    def add_sender(self, sender: SenderProtocol) -> None:
        if sender.flow_id in self.senders:
            raise ValueError(f"flow {sender.flow_id} already hosted")
        sender.attach(self.clock, self._transmit)
        self.senders[sender.flow_id] = sender

    def add_receiver(self, receiver: ReceiverProtocol) -> None:
        if receiver.flow_id in self.receivers:
            raise ValueError(f"flow {receiver.flow_id} already hosted")
        receiver.attach(self.clock, self._transmit)
        self.receivers[receiver.flow_id] = receiver

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _transmit(self, packet: Packet) -> None:
        if self._transport is None:
            raise RuntimeError(f"{self.name}: socket not open")
        if self.peer is None:
            raise RuntimeError(f"{self.name}: no peer address yet")
        self._transport.sendto(encode_packet(packet), self.peer)
        self.datagrams_out += 1

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        self.datagrams_in += 1
        try:
            packet = decode_packet(data)
        except WireFormatError:
            self.decode_errors += 1
            return
        if self._learn_peer:
            self.peer = addr
        if packet.is_ack:
            sender = self.senders.get(packet.flow_id)
            if sender is None:
                self.unroutable += 1
                return
            sender.on_ack(packet)
        else:
            receiver = self.receivers.get(packet.flow_id)
            if receiver is None:
                self.unroutable += 1
                return
            receiver.on_data(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LiveHost {self.name} in={self.datagrams_in} "
                f"out={self.datagrams_out}>")
