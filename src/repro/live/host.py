"""UDP endpoint hosting protocol objects — the live counterpart of the
simulator's :class:`~repro.netsim.topology.Dumbbell` wiring.

A :class:`LiveHost` owns one UDP socket and any number of protocol
endpoints (all senders, or all receivers — one host per side of the
path).  It adapts the two directions of the
``attach(clock, tx)`` contract:

* outbound: the transmit callable handed to each endpoint serialises
  the packet with :mod:`repro.live.wire` and writes it to the socket;
* inbound: every received datagram is parsed and demultiplexed by
  ``flow_id`` to the owning endpoint — ACKs to ``sender.on_ack``, data
  to ``receiver.on_data`` — exactly the routing
  :class:`~repro.netsim.flow.Demux` performs inside the simulator.

The protocol objects themselves are untouched: the same ``VerusSender``
instance that runs inside :class:`~repro.netsim.engine.Simulator` runs
here, scheduling its epoch timer on the shared :class:`WallClock`.

Nothing is dropped silently: every datagram that fails to parse is
accounted in the ``wire_errors`` counter, broken down into ``truncated``
(short datagrams) and ``corrupted`` (CRC failures).  A sender host can
additionally arm a per-flow ACK-inactivity watchdog
(:meth:`LiveHost.start_watchdog`) that detects a dead peer: each flow's
silence threshold grows by capped exponential backoff while the flow
stays quiet and resets the moment an ACK arrives, and a stall that
outlives the cap is flagged *fatal* so the session can tear down
gracefully instead of hanging.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..netsim.flow import ReceiverProtocol, SenderProtocol
from ..netsim.packet import Packet
from .clock import WallClock
from .wire import (
    WireChecksumError,
    WireFormatError,
    WireTruncatedError,
    decode_packet,
    encode_packet,
)

Address = Tuple[str, int]

#: Backoff multiplier ceiling for the ACK-inactivity watchdog: a flow's
#: silence threshold never exceeds ``max_silence * WATCHDOG_BACKOFF_CAP``.
WATCHDOG_BACKOFF_CAP = 8.0


@dataclass
class StallEvent:
    """One watchdog trip: a flow exceeded its silence threshold."""

    flow_id: int
    time: float
    silence: float
    threshold: float
    #: True when the stall outlived the maximum (capped) threshold —
    #: the peer is considered dead and the session should tear down.
    fatal: bool = False


class _DatagramBridge(asyncio.DatagramProtocol):
    """Minimal asyncio glue: forwards datagrams to the host."""

    def __init__(self, host: "LiveHost"):
        self.host = host

    def datagram_received(self, data: bytes, addr: Address) -> None:
        self.host._on_datagram(data, addr)

    def error_received(self, exc: Exception) -> None:  # pragma: no cover
        self.host.socket_errors += 1


class LiveHost:
    """Hosts protocol endpoints on one UDP socket.

    ``peer`` is where outbound packets go.  A sender host points at the
    emulator's ingress; a receiver host usually passes ``peer=None`` and
    learns the return address from the first datagram it receives (its
    ACKs then flow back through whatever middlebox delivered the data,
    mahimahi-style).
    """

    def __init__(self, clock: WallClock, peer: Optional[Address] = None,
                 name: str = "host"):
        self.clock = clock
        self.name = name
        self.peer = peer
        self._learn_peer = peer is None
        self.senders: Dict[int, SenderProtocol] = {}
        self.receivers: Dict[int, ReceiverProtocol] = {}
        self._transport: Optional[asyncio.DatagramTransport] = None
        self.datagrams_in = 0
        self.datagrams_out = 0
        self.wire_errors = 0     # every datagram that failed to parse ...
        self.truncated = 0       # ... of which: shorter than declared
        self.corrupted = 0       # ... of which: CRC-32 mismatch
        self.unroutable = 0
        self.socket_errors = 0
        # -- ACK-inactivity watchdog state --
        self.stalls: List[StallEvent] = []
        self._last_ack: Dict[int, float] = {}
        self._stall_backoff: Dict[int, float] = {}
        self._watchdog_handle = None
        self._watchdog_silence: Optional[float] = None
        self._on_stall: Optional[Callable[[StallEvent], None]] = None

    @property
    def decode_errors(self) -> int:
        """Alias kept for pre-hardening callers: total parse failures."""
        return self.wire_errors

    def counters(self) -> dict:
        """JSON-safe snapshot of the datagram accounting."""
        return {
            "datagrams_in": self.datagrams_in,
            "datagrams_out": self.datagrams_out,
            "wire_errors": self.wire_errors,
            "truncated": self.truncated,
            "corrupted": self.corrupted,
            "unroutable": self.unroutable,
            "socket_errors": self.socket_errors,
            "stalls": len(self.stalls),
        }

    # ------------------------------------------------------------------
    # Socket lifecycle
    # ------------------------------------------------------------------
    async def open(self, local_addr: Address = ("127.0.0.1", 0)) -> Address:
        """Bind the UDP socket; returns the bound (host, port)."""
        if self._transport is not None:
            raise RuntimeError(f"{self.name}: socket already open")
        loop = asyncio.get_running_loop()
        self._transport, _ = await loop.create_datagram_endpoint(
            lambda: _DatagramBridge(self), local_addr=local_addr)
        return self.local_addr

    @property
    def local_addr(self) -> Address:
        if self._transport is None:
            raise RuntimeError(f"{self.name}: socket not open")
        return self._transport.get_extra_info("sockname")[:2]

    def close(self) -> None:
        self.stop_watchdog()
        for sender in self.senders.values():
            if sender.running:
                sender.stop()
        if self._transport is not None:
            self._transport.close()
            self._transport = None

    # ------------------------------------------------------------------
    # Endpoint wiring
    # ------------------------------------------------------------------
    def add_sender(self, sender: SenderProtocol) -> None:
        if sender.flow_id in self.senders:
            raise ValueError(f"flow {sender.flow_id} already hosted")
        sender.attach(self.clock, self._transmit)
        self.senders[sender.flow_id] = sender

    def add_receiver(self, receiver: ReceiverProtocol) -> None:
        if receiver.flow_id in self.receivers:
            raise ValueError(f"flow {receiver.flow_id} already hosted")
        receiver.attach(self.clock, self._transmit)
        self.receivers[receiver.flow_id] = receiver

    # ------------------------------------------------------------------
    # ACK-inactivity watchdog
    # ------------------------------------------------------------------
    def start_watchdog(self, max_silence: float,
                       on_stall: Optional[Callable[[StallEvent], None]] = None,
                       interval: Optional[float] = None) -> None:
        """Arm the per-flow ACK-inactivity watchdog.

        Each sender flow that has started is expected to hear an ACK at
        least every ``max_silence`` seconds.  When a flow goes quiet its
        threshold doubles per trip (capped at
        ``max_silence * WATCHDOG_BACKOFF_CAP``) so a congested-but-alive
        peer is probed with backoff rather than spammed with verdicts;
        an ACK resets the flow's backoff to 1.  A stall that exceeds the
        *capped* threshold is marked ``fatal`` — the peer is presumed
        dead — and handed to ``on_stall`` for teardown.
        """
        if max_silence <= 0:
            raise ValueError("max_silence must be positive")
        if self._watchdog_handle is not None:
            raise RuntimeError(f"{self.name}: watchdog already armed")
        self._watchdog_silence = max_silence
        self._on_stall = on_stall
        self._watchdog_interval = (interval if interval is not None
                                   else max(max_silence / 4.0, 0.05))
        now = self.clock.now
        for flow_id in self.senders:
            self._last_ack.setdefault(flow_id, now)
            self._stall_backoff.setdefault(flow_id, 1.0)
        self._watchdog_handle = self.clock.schedule(
            self._watchdog_interval, self._watchdog_tick)

    def stop_watchdog(self) -> None:
        if self._watchdog_handle is not None:
            self._watchdog_handle.cancel()
            self._watchdog_handle = None

    def _watchdog_tick(self) -> None:
        self._watchdog_handle = None
        if self._watchdog_silence is None:
            return
        now = self.clock.now
        cap = self._watchdog_silence * WATCHDOG_BACKOFF_CAP
        for flow_id, sender in self.senders.items():
            if not sender.running:
                continue
            silence = now - self._last_ack.get(flow_id, now)
            threshold = min(self._watchdog_silence
                            * self._stall_backoff[flow_id], cap)
            if silence < threshold:
                continue
            event = StallEvent(flow_id=flow_id, time=now, silence=silence,
                               threshold=threshold, fatal=silence >= cap)
            self.stalls.append(event)
            self._stall_backoff[flow_id] = min(
                self._stall_backoff[flow_id] * 2.0, WATCHDOG_BACKOFF_CAP)
            if self._on_stall is not None:
                self._on_stall(event)
        self._watchdog_handle = self.clock.schedule(
            self._watchdog_interval, self._watchdog_tick)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------
    def _transmit(self, packet: Packet) -> None:
        if self._transport is None:
            raise RuntimeError(f"{self.name}: socket not open")
        if self.peer is None:
            raise RuntimeError(f"{self.name}: no peer address yet")
        self._transport.sendto(encode_packet(packet), self.peer)
        self.datagrams_out += 1

    def _on_datagram(self, data: bytes, addr: Address) -> None:
        if self._transport is None:
            # close() ran while this callback sat in the event-loop queue;
            # reacting (e.g. an immediate ACK) would hit the dead socket.
            return
        self.datagrams_in += 1
        try:
            packet = decode_packet(data)
        except WireTruncatedError:
            self.wire_errors += 1
            self.truncated += 1
            return
        except WireChecksumError:
            self.wire_errors += 1
            self.corrupted += 1
            return
        except WireFormatError:
            self.wire_errors += 1
            return
        if self._learn_peer:
            self.peer = addr
        if packet.is_ack:
            sender = self.senders.get(packet.flow_id)
            if sender is None:
                self.unroutable += 1
                return
            self._last_ack[packet.flow_id] = self.clock.now
            self._stall_backoff[packet.flow_id] = 1.0
            sender.on_ack(packet)
        else:
            receiver = self.receivers.get(packet.flow_id)
            if receiver is None:
                self.unroutable += 1
                return
            receiver.on_data(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<LiveHost {self.name} in={self.datagrams_in} "
                f"out={self.datagrams_out}>")
