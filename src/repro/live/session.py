"""Session driver: sender host + link emulator + receiver host, one call.

``run_live_session`` is the live twin of
:func:`repro.experiments.runner.run_trace_contention`: it takes the same
declarative :class:`~repro.experiments.runner.FlowSpec` list, builds the
same protocol endpoints through the same factory
(:func:`~repro.experiments.runner.make_endpoints`), runs them over real
localhost UDP datagrams through the :class:`LinkEmulator`, and returns
the same :class:`~repro.experiments.runner.ExperimentResult` — so any
analysis that consumes simulator results consumes live results
unchanged, and sim-vs-live comparisons are two calls with shared
arguments.

Everything runs in one process on one asyncio loop: three logical
actors (sender host, emulator, receiver host) on four UDP sockets.  A
single shared :class:`WallClock` keeps timestamps comparable across
actors, which is what lets the receiver compute one-way delays from the
sender's ``sent_time`` stamps without clock synchronisation.

Default delays mirror the simulator's §6.2 setup (``rtt=0.01``,
``access_delay=0.005``): the emulator's downlink delay plays the role of
forward access path + core-network delay (10 ms) and its uplink delay
the reverse acknowledgement path (5 ms).

Fault injection and graceful degradation: a
:class:`~repro.faults.spec.FaultSchedule` passed as ``fault_schedule``
is compiled onto the live path — packet-level faults on the downlink,
datagram mangling at the delivery tail (exercising the wire format's
CRC), blackout gating on the ACK path.  The sender host's
ACK-inactivity watchdog is armed automatically; if a flow stays silent
past the capped backoff threshold (a dead peer, not a scheduled
blackout — the threshold is sized from the schedule's longest dark
window), the session tears down early and returns a *partial*
:class:`ExperimentResult` flagged ``degraded`` instead of idling to the
deadline.
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

import numpy as np

from ..experiments.runner import ExperimentResult, FlowSpec, make_endpoints
from ..netsim.queues import DropTailQueue, REDQueue
from .clock import WallClock
from .emulator import LinkEmulator
from .host import WATCHDOG_BACKOFF_CAP, LiveHost


class LiveSessionError(RuntimeError):
    """Raised when a live session cannot be set up or run."""


def run_live_session(specs: Sequence[FlowSpec],
                     trace: Optional[np.ndarray] = None,
                     stepper=None,
                     duration: float = 10.0,
                     downlink_delay: float = 0.010,
                     uplink_delay: float = 0.005,
                     use_red: bool = True,
                     queue_bytes: Optional[int] = None,
                     loss_rate: float = 0.0,
                     warmup: float = 1.0,
                     seed: int = 0,
                     impairment_factory=None,
                     fault_schedule=None,
                     max_silence: Optional[float] = None,
                     host: str = "127.0.0.1") -> ExperimentResult:
    """Run ``specs`` over real UDP through the link emulator.

    Parameters mirror :func:`~repro.experiments.runner.run_trace_contention`
    where they overlap.  ``impairment_factory``, if given, is called with
    the session's :class:`WallClock` and must return an impairment link
    (e.g. ``lambda clock: JitterLink(clock, 0.0, 0.004, rng=rng)``)
    inserted on the downlink.

    ``fault_schedule`` compiles a declarative
    :class:`~repro.faults.spec.FaultSchedule` onto the live path (see the
    module docstring); it is mutually exclusive with
    ``impairment_factory``.  ``max_silence`` tunes the ACK-inactivity
    watchdog: ``None`` sizes it automatically from the schedule's longest
    blackout, a non-positive value disables it.

    ``duration`` is *wall-clock* seconds: a 10-second session takes ten
    real seconds (less if the watchdog declares the peer dead — the
    result is then flagged ``degraded`` and covers the time actually
    run).

    Raises :class:`LiveSessionError` when UDP sockets are unavailable
    (sandboxes without network namespaces).
    """
    if (trace is None) == (stepper is None):
        raise ValueError("provide exactly one of trace or stepper")
    if duration <= 0:
        raise ValueError("duration must be positive")
    if impairment_factory is not None and fault_schedule is not None:
        raise ValueError("impairment_factory and fault_schedule are "
                         "mutually exclusive")
    specs = list(specs)
    if not specs:
        raise ValueError("at least one flow spec is required")

    try:
        return asyncio.run(_session(
            specs, trace, stepper, duration, downlink_delay, uplink_delay,
            use_red, queue_bytes, loss_rate, warmup, seed,
            impairment_factory, fault_schedule, max_silence, host))
    except OSError as exc:
        raise LiveSessionError(
            f"cannot run a live UDP session here: {exc}") from exc


def _auto_silence(fault_schedule, duration: float) -> float:
    """Watchdog base threshold sized so its *fatal* cap (``base × 8``)
    clears the schedule's longest blackout: a survivable outage trips
    non-fatal stall probes only, while a genuinely dead peer is declared
    within ``max(4 s, longest blackout + 1 s)``."""
    longest = 0.0
    if fault_schedule is not None:
        longest = max((end - start for start, end
                       in fault_schedule.outage_windows("both")),
                      default=0.0)
    return max(0.5, (longest + 1.0) / WATCHDOG_BACKOFF_CAP)


async def _session(specs, trace, stepper, duration, downlink_delay,
                   uplink_delay, use_red, queue_bytes, loss_rate, warmup,
                   seed, impairment_factory, fault_schedule, max_silence,
                   host) -> ExperimentResult:
    loop = asyncio.get_running_loop()
    clock = WallClock(loop)
    # Independent streams per stochastic component (queue, residual
    # loss, downlink faults, uplink faults) — never one shared rng.
    seeds = np.random.SeedSequence(seed).spawn(4)
    queue_rng, loss_rng, down_rng, up_rng = (
        np.random.default_rng(s) for s in seeds)
    if use_red:
        queue = REDQueue.paper_config(rng=queue_rng)
    else:
        queue = DropTailQueue(capacity_bytes=queue_bytes)
    impairment = (impairment_factory(clock)
                  if impairment_factory is not None else None)

    down_faults = up_faults = None
    if fault_schedule is not None:
        from ..faults.injector import FaultInjector
        down_faults = FaultInjector(clock, fault_schedule, rng=down_rng,
                                    direction="down",
                                    base_delay=downlink_delay,
                                    byte_corruption=True)
        up_faults = FaultInjector(clock, fault_schedule, rng=up_rng,
                                  direction="up")

    emulator = LinkEmulator(
        clock, trace=trace, stepper=stepper, queue=queue,
        downlink_delay=downlink_delay, uplink_delay=uplink_delay,
        loss_rate=loss_rate, rng=loss_rng, impairment=impairment,
        faults=down_faults, uplink_faults=up_faults)
    receiver_host = LiveHost(clock, name="receiver-host")
    sender_host = LiveHost(clock, name="sender-host")

    stop = asyncio.Event()
    degraded_reason: Optional[str] = None
    degraded_code: Optional[str] = None

    def on_stall(event) -> None:
        nonlocal degraded_reason, degraded_code
        if event.fatal and not stop.is_set():
            # Structured code from the resilience taxonomy (a dead peer
            # is a hang as seen from this side) + the human message.
            degraded_code = "hang"
            degraded_reason = (
                f"flow {event.flow_id} heard no ACK for "
                f"{event.silence:.2f}s (fatal threshold "
                f"{event.threshold:.2f}s) — peer presumed dead")
            stop.set()

    senders, receivers = [], []
    try:
        await emulator.open(host)
        receiver_addr = await receiver_host.open((host, 0))
        sender_host.peer = emulator.ingress_addr
        await sender_host.open((host, 0))

        for flow_id, spec in enumerate(specs):
            sender, receiver = make_endpoints(spec, flow_id)
            sender_host.add_sender(sender)
            receiver_host.add_receiver(receiver)
            senders.append(sender)
            receivers.append(receiver)

        silence = (max_silence if max_silence is not None
                   else _auto_silence(fault_schedule, duration))
        if silence > 0:
            sender_host.start_watchdog(silence, on_stall)

        emulator.start(receiver=receiver_addr)
        for spec, sender in zip(specs, senders):
            clock.call_later(max(0.0, spec.start_at), sender.start)

        try:
            await asyncio.wait_for(stop.wait(),
                                   timeout=max(0.0, duration - clock.now))
        except asyncio.TimeoutError:
            pass
        ended_at = min(duration, clock.now)
        for sender in senders:
            if sender.running:
                sender.stop()
        # Grace period: let in-flight datagrams and final ACKs drain so
        # receiver-side statistics include the tail of the session.
        await asyncio.sleep(min(0.25, 2 * (downlink_delay + uplink_delay)
                                 + 0.05))
    finally:
        emulator.close()
        sender_host.close()
        receiver_host.close()
        # Give the transports a loop iteration to tear down cleanly.
        await asyncio.sleep(0)

    result = ExperimentResult(specs, senders, receivers, ended_at, warmup,
                              degraded=stop.is_set(),
                              degraded_reason=degraded_reason,
                              degraded_code=degraded_code)
    result.emulator_stats = emulator.stats
    result.wall_clock = clock
    result.live_counters = {
        "sender_host": sender_host.counters(),
        "receiver_host": receiver_host.counters(),
        "emulator": emulator.stats.as_dict(),
    }
    if down_faults is not None:
        result.fault_stats = {"down": down_faults.stats.as_dict(),
                              "up": up_faults.stats.as_dict()}
    result.stalls = list(sender_host.stalls)
    return result
