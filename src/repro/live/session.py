"""Session driver: sender host + link emulator + receiver host, one call.

``run_live_session`` is the live twin of
:func:`repro.experiments.runner.run_trace_contention`: it takes the same
declarative :class:`~repro.experiments.runner.FlowSpec` list, builds the
same protocol endpoints through the same factory
(:func:`~repro.experiments.runner.make_endpoints`), runs them over real
localhost UDP datagrams through the :class:`LinkEmulator`, and returns
the same :class:`~repro.experiments.runner.ExperimentResult` — so any
analysis that consumes simulator results consumes live results
unchanged, and sim-vs-live comparisons are two calls with shared
arguments.

Everything runs in one process on one asyncio loop: three logical
actors (sender host, emulator, receiver host) on four UDP sockets.  A
single shared :class:`WallClock` keeps timestamps comparable across
actors, which is what lets the receiver compute one-way delays from the
sender's ``sent_time`` stamps without clock synchronisation.

Default delays mirror the simulator's §6.2 setup (``rtt=0.01``,
``access_delay=0.005``): the emulator's downlink delay plays the role of
forward access path + core-network delay (10 ms) and its uplink delay
the reverse acknowledgement path (5 ms).
"""

from __future__ import annotations

import asyncio
from typing import Optional, Sequence

import numpy as np

from ..experiments.runner import ExperimentResult, FlowSpec, make_endpoints
from ..netsim.queues import DropTailQueue, REDQueue
from .clock import WallClock
from .emulator import LinkEmulator
from .host import LiveHost


class LiveSessionError(RuntimeError):
    """Raised when a live session cannot be set up or run."""


def run_live_session(specs: Sequence[FlowSpec],
                     trace: Optional[np.ndarray] = None,
                     stepper=None,
                     duration: float = 10.0,
                     downlink_delay: float = 0.010,
                     uplink_delay: float = 0.005,
                     use_red: bool = True,
                     queue_bytes: Optional[int] = None,
                     loss_rate: float = 0.0,
                     warmup: float = 1.0,
                     seed: int = 0,
                     impairment_factory=None,
                     host: str = "127.0.0.1") -> ExperimentResult:
    """Run ``specs`` over real UDP through the link emulator.

    Parameters mirror :func:`~repro.experiments.runner.run_trace_contention`
    where they overlap.  ``impairment_factory``, if given, is called with
    the session's :class:`WallClock` and must return an impairment link
    (e.g. ``lambda clock: JitterLink(clock, 0.0, 0.004)``) inserted on
    the downlink.

    ``duration`` is *wall-clock* seconds: a 10-second session takes ten
    real seconds.

    Raises :class:`LiveSessionError` when UDP sockets are unavailable
    (sandboxes without network namespaces).
    """
    if (trace is None) == (stepper is None):
        raise ValueError("provide exactly one of trace or stepper")
    if duration <= 0:
        raise ValueError("duration must be positive")
    specs = list(specs)
    if not specs:
        raise ValueError("at least one flow spec is required")

    try:
        return asyncio.run(_session(
            specs, trace, stepper, duration, downlink_delay, uplink_delay,
            use_red, queue_bytes, loss_rate, warmup, seed,
            impairment_factory, host))
    except OSError as exc:
        raise LiveSessionError(
            f"cannot run a live UDP session here: {exc}") from exc


async def _session(specs, trace, stepper, duration, downlink_delay,
                   uplink_delay, use_red, queue_bytes, loss_rate, warmup,
                   seed, impairment_factory, host) -> ExperimentResult:
    loop = asyncio.get_running_loop()
    clock = WallClock(loop)
    rng = np.random.default_rng(seed)
    if use_red:
        queue = REDQueue.paper_config(rng=rng)
    else:
        queue = DropTailQueue(capacity_bytes=queue_bytes)
    impairment = (impairment_factory(clock)
                  if impairment_factory is not None else None)

    emulator = LinkEmulator(
        clock, trace=trace, stepper=stepper, queue=queue,
        downlink_delay=downlink_delay, uplink_delay=uplink_delay,
        loss_rate=loss_rate, rng=rng, impairment=impairment)
    receiver_host = LiveHost(clock, name="receiver-host")
    sender_host = LiveHost(clock, name="sender-host")

    senders, receivers = [], []
    try:
        await emulator.open(host)
        receiver_addr = await receiver_host.open((host, 0))
        sender_host.peer = emulator.ingress_addr
        await sender_host.open((host, 0))

        for flow_id, spec in enumerate(specs):
            sender, receiver = make_endpoints(spec, flow_id)
            sender_host.add_sender(sender)
            receiver_host.add_receiver(receiver)
            senders.append(sender)
            receivers.append(receiver)

        emulator.start(receiver=receiver_addr)
        for spec, sender in zip(specs, senders):
            clock.schedule(max(0.0, spec.start_at), sender.start)

        await clock.sleep_until(duration)
        for sender in senders:
            if sender.running:
                sender.stop()
        # Grace period: let in-flight datagrams and final ACKs drain so
        # receiver-side statistics include the tail of the session.
        await asyncio.sleep(min(0.25, 2 * (downlink_delay + uplink_delay)
                                 + 0.05))
    finally:
        emulator.close()
        sender_host.close()
        receiver_host.close()
        # Give the transports a loop iteration to tear down cleanly.
        await asyncio.sleep(0)

    result = ExperimentResult(specs, senders, receivers, duration, warmup)
    result.emulator_stats = emulator.stats
    result.wall_clock = clock
    return result
