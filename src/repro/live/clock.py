"""Wall-clock implementation of the :class:`~repro.netsim.flow.Clock`
scheduling interface.

Protocol endpoints only ever call ``clock.now`` and
``clock.schedule(delay, fn, *args)`` (directly or through
:class:`~repro.netsim.engine.PeriodicTimer`).  :class:`WallClock` maps
those onto the asyncio event loop: ``now`` is the loop's monotonic time
re-based to zero at construction — so live timestamps line up with
trace timestamps and with simulated runs that also start at t=0 — and
``schedule`` becomes ``loop.call_later`` wrapped in a cancellable
handle with the same surface as a simulator :class:`Event`.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable, Optional


class WallEvent:
    """Cancellable handle mirroring :class:`repro.netsim.engine.Event`."""

    __slots__ = ("_handle", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle):
        self._handle = handle
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing.  Safe to call repeatedly."""
        self._cancelled = True
        self._handle.cancel()

    @property
    def active(self) -> bool:
        return not self._cancelled and not self._handle.cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else "pending"
        return f"<WallEvent {state}>"


class WallClock:
    """Asyncio-backed clock satisfying :class:`repro.netsim.flow.Clock`.

    One instance is shared by every component of a live session (sender
    host, emulator, receiver host) so all of them agree on what t=0
    means.
    """

    def __init__(self, loop: Optional[asyncio.AbstractEventLoop] = None,
                 origin: Optional[float] = None):
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self.origin = origin if origin is not None else self.loop.time()

    @property
    def now(self) -> float:
        """Seconds of wall time since the session origin."""
        return self.loop.time() - self.origin

    def schedule(self, delay: float, callback: Callable[..., Any],
                 *args: Any) -> WallEvent:
        """Run ``callback(*args)`` after ``delay`` seconds of wall time.

        Unlike the simulator, tiny negative delays are clamped to zero
        instead of rejected: wall time keeps moving while protocol code
        computes, so "schedule at the epoch boundary that just passed"
        is an expected race, not a programming error.
        """
        return WallEvent(self.loop.call_later(max(0.0, delay), callback, *args))

    def schedule_at(self, time: float, callback: Callable[..., Any],
                    *args: Any) -> WallEvent:
        """Run ``callback(*args)`` at absolute session time ``time``."""
        return self.schedule(time - self.now, callback, *args)

    def call_later(self, delay: float, callback: Callable[..., Any],
                   *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no cancellable handle.

        Mirrors :meth:`repro.netsim.engine.Simulator.call_later` so
        protocol code may use the fast path on either substrate.
        """
        self.loop.call_later(max(0.0, delay), callback, *args)

    def call_at(self, time: float, callback: Callable[..., Any],
                *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at` (no cancellable handle)."""
        self.loop.call_later(max(0.0, time - self.now), callback, *args)

    async def sleep_until(self, time: float) -> None:
        """Coroutine: suspend until absolute session time ``time``."""
        delay = time - self.now
        if delay > 0:
            await asyncio.sleep(delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<WallClock now={self.now:.6f}>"
