"""Table 1 — Jain's fairness index for 2/5/10/15/20 users.

Windowed (1 s) Jain index averaged across the evaluation scenarios for
Cubic, NewReno and Verus (R=2).  Shape to reproduce: Cubic's fairness
degrades substantially under high contention; Verus and NewReno hold up.
"""

from repro.experiments import format_table
from repro.experiments.tracedriven import table1_fairness


def test_table1_fairness(run_once):
    rows = run_once(table1_fairness,
                    user_counts=(2, 5, 10, 15, 20),
                    duration=45.0)

    print()
    print(format_table(rows, title="Table 1: Jain's fairness index"))

    for row in rows:
        for protocol in ("cubic", "newreno", "verus_r2"):
            assert 0.0 < row[protocol] <= 1.0

    low = rows[0]       # 2 users
    high = rows[-1]     # 20 users
    # Cubic degrades with contention (paper: 98% → 70%).
    assert high["cubic"] < low["cubic"]
    # Verus retains reasonable fairness at high contention (paper: ~79%
    # at 20 users, above Cubic's ~70%).
    assert high["verus_r2"] > 0.55
    assert high["verus_r2"] > high["cubic"] - 0.05
