"""Performance microbenchmarks of the simulation substrate.

These now drive the named benchmark suite in :mod:`repro.obs.bench` —
the same definitions ``repro bench`` runs — so workloads, seeds, and
parameters live in exactly one place.  pytest-benchmark provides the
multi-round timing and statistics here; ``repro bench`` provides the
schema-versioned JSON artefacts and the compare gate.  A workload
change shows up in both as a changed content hash.

The ``full`` parameter set matches what this file used to hardcode
(100k engine events, 10k queue packets, 10 simulated Verus seconds...).
"""

import pytest

from repro.obs.bench import BENCHMARKS

MODE = "full"

#: Sanity floor per benchmark: the checksum ``run`` returns must clear
#: it, mirroring the asserts of the pre-suite version of this file.
CHECKSUM_FLOORS = {
    "engine.events": 100_000,        # every scheduled event dispatched
    "queue.droptail": 10_000,        # every packet drained
    "queue.red": 1,                  # some packets accepted
    "profile.update": 10,            # one rebuild per 1k samples
    "channel.generate": 1_000,       # trace has real resolution
    "tracelink.replay": 1_000,       # replay delivered packets
    "sim.verus_direct": 1_000,       # the flow actually moved data
    "sim.contention": 1_000,
    "sim.contention_telemetry": 1_000,
}


@pytest.mark.parametrize("name", sorted(BENCHMARKS))
def test_perf(name, benchmark):
    bench = BENCHMARKS[name]
    workload, workload_hash = bench.setup(bench.params[MODE])
    assert len(workload_hash) == 64      # content-addressed workload

    result = benchmark.pedantic(bench.run, args=(workload,),
                                rounds=bench.repeats[MODE], iterations=1,
                                warmup_rounds=0)
    assert result is not None
    floor = CHECKSUM_FLOORS.get(name)
    if floor is not None:
        assert result >= floor, (
            f"{name}: checksum {result!r} below sanity floor {floor}")
