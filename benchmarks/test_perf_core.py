"""Performance microbenchmarks of the simulation substrate.

Unlike the figure benches (one full experiment per round), these measure
the library's hot paths with proper multi-round timing: event throughput
of the engine, queue operations, spline construction/lookup, channel
generation, and end-to-end simulated-seconds-per-wall-second for a
Verus flow.  They quantify the "throughput limits" the reproduction
calibration flagged for a Python implementation.
"""

import numpy as np

from repro.cellular import CellularChannelModel, ChannelParams
from repro.core import DelayProfiler, VerusConfig, VerusReceiver, VerusSender
from repro.interp import PchipInterpolator
from repro.netsim import DirectPath, DropTailQueue, Link, Packet, REDQueue, Simulator


def test_perf_engine_event_throughput(benchmark):
    """Schedule + dispatch cost of the heap engine (100k events)."""

    def run():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1

        for i in range(100_000):
            sim.schedule(i * 1e-6, tick)
        sim.run()
        return counter[0]

    assert benchmark(run) == 100_000


def test_perf_droptail_queue(benchmark):
    """Push/pop cycle on the drop-tail queue (10k packets)."""

    packets = [Packet(flow_id=0, seq=i) for i in range(10_000)]

    def run():
        queue = DropTailQueue()
        for packet in packets:
            queue.push(packet, 0.0)
        drained = 0
        while queue.pop(0.0) is not None:
            drained += 1
        return drained

    assert benchmark(run) == 10_000


def test_perf_red_queue(benchmark):
    """RED's EWMA + probabilistic drop path (10k packets)."""

    packets = [Packet(flow_id=0, seq=i) for i in range(10_000)]

    def run():
        rng = np.random.default_rng(0)
        queue = REDQueue(min_th_bytes=2_000_000, max_th_bytes=6_000_000,
                         rng=rng)
        accepted = 0
        for packet in packets:
            if queue.push(packet, 0.0):
                accepted += 1
        return accepted

    assert benchmark(run) > 0


def test_perf_pchip_build_and_eval(benchmark):
    """Spline construction + 512-point grid evaluation (profile rebuild)."""

    rng = np.random.default_rng(0)
    x = np.sort(rng.choice(np.arange(1, 2000), size=256, replace=False))
    y = np.cumsum(rng.random(256)) * 0.001 + 0.02

    def run():
        spline = PchipInterpolator(x.astype(float), y)
        grid = np.linspace(x[0], x[-1], 512)
        return float(np.sum(spline(grid)))

    assert benchmark(run) > 0


def test_perf_profile_update_path(benchmark):
    """The per-ACK profiler hot path: 10k add_sample calls + rebuilds."""

    rng = np.random.default_rng(1)
    windows = rng.integers(1, 400, size=10_000)
    delays = rng.uniform(0.02, 0.3, size=10_000)

    def run():
        profiler = DelayProfiler()
        for i in range(10_000):
            profiler.add_sample(int(windows[i]), float(delays[i]),
                                now=i * 0.001)
            if i % 1000 == 999:
                profiler.interpolate(d_min=0.02, now=i * 0.001)
        return profiler.interpolations

    assert benchmark(run) == 10


def test_perf_channel_generation(benchmark):
    """Trace synthesis rate (60 simulated seconds of 10 Mbps LTE)."""

    params = ChannelParams(mean_rate_bps=10e6)

    def run():
        model = CellularChannelModel(params, rng=np.random.default_rng(2))
        return model.generate(60.0).size

    assert benchmark(run) > 1000


def test_perf_verus_simulation_rate(benchmark):
    """End-to-end: wall cost of 10 simulated seconds of a 10 Mbps Verus
    flow (the number that bounds every experiment's runtime)."""

    def run():
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
        sender = VerusSender(0, VerusConfig())
        receiver = VerusReceiver(0)
        DirectPath(sim, link, sender, receiver, rtt=0.05).run(10.0)
        return receiver.packets_received

    assert benchmark(run) > 1000
