"""Fig 2 — burst size / inter-arrival PDFs for Du & Etisalat × 3G & LTE.

Regenerates the four five-minute stationary downlink traces and their
log-binned burst distributions.
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.channel_study import fig2_burst_pdfs


def test_fig2_burst_pdfs(run_once):
    result = run_once(fig2_burst_pdfs, duration=300.0)

    print()
    print(format_table(result.summary_rows(),
                       title="Fig 2: burst statistics per configuration"))

    # Shape from the paper: LTE exhibits more frequent, smaller bursts
    # than 3G for both operators.
    for operator in ("du", "etisalat"):
        b3g = result.stats[f"{operator}_3g"]
        lte = result.stats[f"{operator}_lte"]
        assert lte.count > b3g.count
        assert np.mean(lte.sizes_bytes) < np.mean(b3g.sizes_bytes)
        assert np.mean(lte.inter_arrivals) < np.mean(b3g.inter_arrivals)

    # Burst sizes span orders of magnitude (heavy-tailed PDFs on log axes).
    for label, stats in result.stats.items():
        assert stats.sizes_bytes.max() > 5 * stats.sizes_bytes.min()
