"""Fig 15 — effect of updating the delay profile.

Verus R=2 over the five collected traces, once with the 1 s profile
re-interpolation and once with the first profile frozen.  The paper:
"updating the curve has an impact on performance due to the fact that
the cellular channel changes and Verus needs to update its operating
point on the curve based on these changes."

Reproduced shape: the frozen profile drifts off the channel's current
operating point and consistently costs *delay* (the paper's static
points sit to the right).  In this reproduction the stale profile errs
on the aggressive side (delay up ~40%, throughput up as a side effect)
— see EXPERIMENTS.md for the discussion.
"""

from repro.experiments import format_table
from repro.experiments.tracedriven import (
    fig15_delay_ratio,
    fig15_gain,
    fig15_static_profile,
)


def test_fig15_static_profile(run_once):
    rows = run_once(fig15_static_profile, flows=5, duration=60.0)

    print()
    print(format_table(rows, title="Fig 15: updating vs static profile"))
    delay_ratio = fig15_delay_ratio(rows)
    throughput_ratio = fig15_gain(rows)
    print(f"updating/static delay ratio:      {delay_ratio:.2f}")
    print(f"updating/static throughput ratio: {throughput_ratio:.2f}")

    # Updating the profile must keep delay meaningfully lower than a
    # frozen profile, scenario by scenario.
    by_scenario = {}
    for row in rows:
        by_scenario.setdefault(row["scenario"], {})[row["profile"]] = row
    lower_delay = sum(
        1 for pair in by_scenario.values()
        if pair["updating"]["mean_delay_ms"] < pair["static"]["mean_delay_ms"])
    assert lower_delay >= len(by_scenario) - 1
    assert delay_ratio < 0.9
    # Delay-efficiency (throughput per unit delay) must not regress.
    assert throughput_ratio / delay_ratio > 0.9
