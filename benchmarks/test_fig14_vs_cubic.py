"""Fig 14 — Verus sharing a bottleneck with TCP Cubic.

Three Verus flows join at t = 0/30/60 s, then three Cubic flows at
t = 90/120/150 s on a 60 Mbps link.  The paper reports that Verus shares
the bottleneck capacity with Cubic in the same ballpark rather than
starving or being starved.
"""

from repro.experiments import format_table
from repro.experiments.micro import fig14_vs_cubic


def test_fig14_vs_cubic(run_once):
    result = run_once(fig14_vs_cubic)

    rows = [{"flow": label, "tail_throughput_mbps": bps / 1e6}
            for label, bps in sorted(result["tail_throughputs_bps"].items())]
    print()
    print(format_table(rows, title="Fig 14: tail throughput per flow"))
    print(f"aggregate Verus/Cubic ratio: "
          f"{result['verus_to_cubic_ratio']:.2f}")

    # Shape: coexistence — neither protocol is starved out.  The exact
    # share split is substrate-sensitive in this reproduction: with the
    # 200 ms drop-tail buffer Verus (R=6, tolerance 120 ms) yields ~1:5
    # to Cubic; with an 80 ms buffer the outcome flips (Cubic's loss
    # sawtooth loses to Verus's instant profile recovery).  The paper's
    # equal split lies between those regimes; we assert the coexistence
    # band and document the sensitivity in EXPERIMENTS.md.
    assert 0.1 < result["verus_to_cubic_ratio"] < 10.0
    for label, bps in result["tail_throughputs_bps"].items():
        if label.startswith("verus"):
            assert bps > 1e6, f"{label} starved"
    total = (result["verus_total_bps"] + result["cubic_total_bps"])
    assert total > 0.7 * 60e6
