"""Ablation — SACK-emulated vs RFC 6582 partial-ACK TCP recovery.

The TCP baselines default to SACK-emulated recovery (matching the
kernels the paper benchmarks).  This bench quantifies the difference the
choice makes on a shallow-buffer bottleneck where slow start drops a
burst of packets: SACK repairs the burst in about a round trip, NewReno
partial ACKs take one round trip per hole.
"""

from repro.experiments import format_table
from repro.metrics import flow_stats
from repro.netsim import DirectPath, DropTailQueue, Link, Simulator
from repro.tcp import NewRenoSender, TcpReceiver


def run_variant(sack: bool, duration=30.0, seed=0):
    sim = Simulator()
    link = Link(sim, rate_bps=20e6,
                queue=DropTailQueue(capacity_bytes=100_000))
    sender = NewRenoSender(0, sack=sack)
    receiver = TcpReceiver(0)
    DirectPath(sim, link, sender, receiver, rtt=0.05).run(duration)
    stats = flow_stats(receiver.deliveries, start=5.0, end=duration)
    return {
        "recovery": "sack" if sack else "newreno_partial_ack",
        "throughput_mbps": stats.throughput_bps / 1e6,
        "timeouts": sender.timeouts,
        "fast_retransmits": sender.fast_retransmits,
    }


def test_ablation_sack(run_once):
    rows = run_once(lambda: [run_variant(True), run_variant(False)])

    print()
    print(format_table(rows, title="Ablation: TCP loss-recovery mode"))

    sack, partial = rows[0], rows[1]
    # SACK must not lose to partial-ACK recovery (it typically wins by a
    # wide margin because multi-packet loss bursts repair in ~1 RTT).
    assert sack["throughput_mbps"] >= 0.95 * partial["throughput_mbps"]
    # Both modes must still be functional.
    assert partial["throughput_mbps"] > 5.0
