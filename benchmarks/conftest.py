"""Shared benchmark configuration.

Every benchmark regenerates one of the paper's tables or figures and
prints the rows/series the paper reports (run with ``-s`` to see them).
Each experiment is executed once per benchmark round (they are full
simulations, not micro-kernels), so all benches use ``pedantic`` mode
with a single round via the ``run_once`` helper.
"""

import pytest


@pytest.fixture
def run_once(benchmark):
    """Run ``fn`` exactly once under pytest-benchmark timing."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1, warmup_rounds=0)

    return _run
