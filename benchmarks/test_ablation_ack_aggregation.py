"""Ablation — ACK aggregation on the feedback path.

Cellular uplinks routinely compress ACK streams.  Verus's delay profile
is fed by per-packet acknowledgements, so batching them coarsens both
the per-epoch D_max sampling and the (window, delay) tuples.  This bench
quantifies the cost on a fixed bottleneck: throughput should survive,
delay control should degrade monotonically with the batch size.
"""

from repro.core import VerusConfig, VerusReceiver, VerusSender
from repro.experiments import format_table
from repro.metrics import flow_stats
from repro.netsim import DirectPath, DropTailQueue, Link, Simulator


def run_with_aggregation(ack_every, duration=40.0):
    sim = Simulator()
    link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
    sender = VerusSender(0, VerusConfig())
    receiver = VerusReceiver(0, ack_every=ack_every)
    DirectPath(sim, link, sender, receiver, rtt=0.05).run(duration)
    stats = flow_stats(receiver.deliveries, start=duration / 2, end=duration)
    return {
        "ack_every": ack_every,
        "throughput_mbps": stats.throughput_bps / 1e6,
        "mean_delay_ms": stats.mean_delay_ms,
        "losses": sender.losses_detected,
    }


def test_ablation_ack_aggregation(run_once):
    rows = run_once(lambda: [run_with_aggregation(n) for n in (1, 2, 4)])

    print()
    print(format_table(rows, title="Ablation: ACK aggregation"))

    per_packet, every2, every4 = rows
    # Throughput survives aggregation...
    for row in rows:
        assert row["throughput_mbps"] > 0.85 * 10.0
        assert row["losses"] == 0
    # ...but delay control pays, increasingly with the batch size.
    assert every4["mean_delay_ms"] > per_packet["mean_delay_ms"]
    assert every4["mean_delay_ms"] >= every2["mean_delay_ms"] * 0.95
