"""Ablation — delay-profile knot ageing (``profile_max_age``).

Without ageing, high-delay knots recorded in a past low-capacity era
permanently fence off the window range above them: the inverse lookup
never selects those windows, so they are never re-measured.  The bench
measures time-to-track after a 2 → 20 Mbps capacity step and steady-state
behaviour on a fixed link (where ageing must not hurt).
"""

import numpy as np

from repro.core import VerusConfig, VerusReceiver, VerusSender
from repro.experiments import format_table
from repro.metrics import flow_stats, windowed_throughput
from repro.netsim import DirectPath, DropTailQueue, Link, Simulator


def capacity_step(max_age, duration=60.0, step_at=20.0):
    sim = Simulator()
    link = Link(sim, rate_bps=2e6,
                queue=DropTailQueue(capacity_bytes=200_000))
    sender = VerusSender(0, VerusConfig(profile_max_age=max_age))
    receiver = VerusReceiver(0)
    path = DirectPath(sim, link, sender, receiver, rtt=0.03)
    sim.schedule_at(step_at, lambda: setattr(link, "rate_bps", 20e6))
    path.run(duration)
    t, series = windowed_throughput(receiver.deliveries, 1.0,
                                    start=step_at, end=duration)
    above = np.flatnonzero(series >= 0.8 * 20e6)
    track_time = float(t[above[0]] - step_at) if above.size else np.inf
    tail = flow_stats(receiver.deliveries, start=duration - 10.0,
                      end=duration)
    return track_time, tail.throughput_bps


def steady_state(max_age, duration=40.0):
    sim = Simulator()
    link = Link(sim, rate_bps=10e6, queue=DropTailQueue())
    sender = VerusSender(0, VerusConfig(profile_max_age=max_age))
    receiver = VerusReceiver(0)
    DirectPath(sim, link, sender, receiver, rtt=0.05).run(duration)
    return flow_stats(receiver.deliveries, start=duration / 2, end=duration)


def run_ablation():
    rows = []
    for label, age in (("age_10s", 10.0), ("no_ageing", None)):
        track_time, tail_bps = capacity_step(age)
        steady = steady_state(age)
        rows.append({
            "profile_age": label,
            "track_time_s": track_time,
            "post_step_tail_mbps": tail_bps / 1e6,
            "steady_mbps": steady.throughput_bps / 1e6,
            "steady_delay_ms": steady.mean_delay_ms,
        })
    return rows


def test_ablation_profile_age(run_once):
    rows = run_once(run_ablation)

    print()
    print(format_table(rows, title="Ablation: profile knot ageing"))

    aged, frozen = rows[0], rows[1]
    # Ageing must track the capacity step far faster (the frozen profile
    # often never reaches 80 % within the run).
    assert aged["track_time_s"] < 20.0
    assert (aged["track_time_s"] < frozen["track_time_s"]
            or frozen["track_time_s"] == float("inf"))
    assert aged["post_step_tail_mbps"] > 15.0
    # And it must not cost anything at steady state.
    assert aged["steady_mbps"] > 0.9 * frozen["steady_mbps"]
