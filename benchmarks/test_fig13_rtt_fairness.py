"""Fig 13 — Verus intra-fairness across different RTTs.

Three Verus flows with RTTs 20/50/100 ms share a 60 Mbps bottleneck.
The paper observes throughput roughly independent of RTT (near max-min
fair), unlike RTT-biased loss-based TCP.
"""

from repro.experiments import format_table
from repro.experiments.micro import fig13_rtt_fairness


def test_fig13_rtt_fairness(run_once):
    result = run_once(fig13_rtt_fairness, duration=120.0)

    print()
    print(format_table([s.as_dict() for s in result["stats"]],
                       title="Fig 13: per-RTT Verus flows on 60 Mbps"))
    print(f"Jain index: {result['jain']:.3f}   "
          f"max/min throughput ratio: {result['max_over_min']:.2f}")

    # Reproduced shape: no flow starves despite a 5× RTT range and the
    # link stays well utilised.  A residual bias favouring longer RTTs
    # remains (each flow's delay budget scales with its own base RTT);
    # the paper's near-equal lines correspond to the synchronised
    # equilibrium this multi-stable system does not always reach — see
    # EXPERIMENTS.md.
    assert result["jain"] > 0.55
    assert result["max_over_min"] < 12.0
    assert min(s.throughput_bps for s in result["stats"]) > 2e6
    total = sum(s.throughput_bps for s in result["stats"])
    assert total > 0.6 * 60e6
