"""Beyond the paper — the full §2 protocol landscape on one cellular cell.

Runs every implemented congestion controller (Verus, Cubic, NewReno,
Vegas, Sprout, PCC, LEDBAT, Compound, Binomial-SQRT) over the same
3G trace and prints the throughput/delay landscape.  The shape to hold:
Verus sits on the efficient frontier — no protocol beats it on *both*
axes at once.
"""

from repro.cellular import generate_scenario_trace
from repro.experiments import format_table, repeat_flows, run_trace_contention
from repro.metrics import aggregate_stats

PROTOCOLS = (
    ("verus", {"r": 2.0}),
    ("cubic", {}),
    ("newreno", {}),
    ("vegas", {}),
    ("sprout", {}),
    ("pcc", {}),
    ("ledbat", {}),
    ("compound", {}),
    ("binomial", {}),
)


def run_landscape(duration=60.0, flows=3, seed=21):
    trace = generate_scenario_trace("city_stationary", duration=duration,
                                    technology="3g", mean_rate_bps=10e6,
                                    seed=seed)
    rows = []
    for protocol, options in PROTOCOLS:
        specs = repeat_flows(protocol, flows, **options)
        result = run_trace_contention(trace, specs, duration=duration,
                                      seed=seed)
        agg = aggregate_stats(result.all_stats())
        rows.append({
            "protocol": protocol,
            "throughput_mbps": agg["mean_throughput_mbps"],
            "mean_delay_ms": agg["mean_delay_ms"],
        })
    return rows


def test_protocol_landscape(run_once):
    rows = run_once(run_landscape, duration=60.0)

    print()
    print(format_table(rows, title="All baselines on one 3G cell"))

    by_protocol = {row["protocol"]: row for row in rows}
    verus = by_protocol["verus"]

    # Verus on the efficient frontier: nothing *clearly* dominates it on
    # both axes (15 % margins — fellow delay-based protocols like Vegas
    # and Sprout land within noise of Verus's operating point on a mild
    # stationary cell; the paper separates them on burstier channels).
    for name, row in by_protocol.items():
        if name == "verus":
            continue
        dominates = (row["throughput_mbps"] > 1.15 * verus["throughput_mbps"]
                     and row["mean_delay_ms"] < 0.85 * verus["mean_delay_ms"])
        assert not dominates, f"{name} clearly dominates Verus on both axes"

    # Loss-based protocols all pay heavily in delay on the cellular cell.
    for name in ("cubic", "newreno", "compound", "binomial"):
        assert by_protocol[name]["mean_delay_ms"] > verus["mean_delay_ms"]

    # Every protocol moves data (no dead implementations).
    for row in rows:
        assert row["throughput_mbps"] > 0.05
