"""Fig 3 — impact of competing traffic on packet delay (3G downlink).

User 1 receives CBR at 1/5/10 Mbps while user 2 toggles a 10 Mbps flow
every minute; the bench reports user 1's average delay in OFF vs ON
periods, reproducing the near-saturation delay blow-up.
"""

from repro.experiments import format_table
from repro.experiments.channel_study import fig3_competing_traffic


def test_fig3_competing_traffic(run_once):
    result = run_once(fig3_competing_traffic, duration=240.0)

    print()
    print(format_table(result.rows,
                       title="Fig 3: user-1 delay, user 2 OFF vs ON"))

    jumps = []
    for row in result.rows:
        assert row["avg_delay_on_ms"] > row["avg_delay_off_ms"]
        jumps.append(row["avg_delay_on_ms"] - row["avg_delay_off_ms"])

    # The 10 Mbps user (combined rate ≈ channel capacity) suffers by far
    # the largest delay increase — the paper's headline observation.
    assert jumps[-1] == max(jumps)
    assert jumps[-1] > 5 * max(jumps[0], 1.0)
