"""§6.2 uplink — "the observations are similar for the uplink".

Reruns the trace-driven contention comparison on the uplink channel
presets (2.5 Mbps-class provisioning, sparser grant scheduling) and
checks that the downlink observations carry over.
"""

from repro.experiments import format_table
from repro.experiments.uplink import observations_carry_over, uplink_comparison


def test_uplink_observations(run_once):
    rows = run_once(uplink_comparison, duration=60.0)

    print()
    print(format_table(rows, title="§6.2 uplink comparison"))
    checks = observations_carry_over(rows)
    print("checks:", checks)

    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"uplink observations did not carry over: {failed}"
