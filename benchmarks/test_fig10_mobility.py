"""Fig 10 — trace-driven contention under three mobility patterns.

Ten flows share a RED-managed cellular trace (campus pedestrian, city
driving, highway); scatter of per-flow (delay, throughput) for Cubic,
NewReno and Verus R ∈ {2, 4, 6}.
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.tracedriven import fig10_mobility, summarize_fig10


def test_fig10_mobility(run_once):
    points = run_once(fig10_mobility, flows=10, duration=60.0)

    rows = summarize_fig10(points)
    print()
    print(format_table(rows, title="Fig 10: per-(scenario, protocol) means"))

    for scenario in {r["scenario"] for r in rows}:
        by_proto = {r["protocol"]: r for r in rows
                    if r["scenario"] == scenario}
        cubic = by_proto["cubic"]
        verus2 = by_proto["verus_r2"]
        verus6 = by_proto["verus_r6"]
        # Clear delay gap for R=2 vs loss-based TCP (the RED shaper caps
        # Cubic's bufferbloat here, so the gap is 2-4x rather than the
        # 10x seen on drop-tail cells; see EXPERIMENTS.md).
        assert verus2["mean_delay_ms"] < cubic["mean_delay_ms"] / 2.0, scenario
        # R=6 buys throughput at the cost of delay, relative to R=2.
        assert verus6["mean_throughput_mbps"] > verus2["mean_throughput_mbps"]
        assert verus6["mean_delay_ms"] > verus2["mean_delay_ms"]
        # Throughput remains comparable (not collapsed).
        assert (verus6["mean_throughput_mbps"]
                > 0.5 * cubic["mean_throughput_mbps"])
