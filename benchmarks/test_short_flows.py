"""§7 "Short Flows" — flow-completion time for finite transfers.

The paper (discussion, no figure): a short flow that never leaves slow
start behaves like legacy TCP; beyond slow start Verus's delay profile
keeps it competitive.  The bench sweeps transfer sizes on a 3G channel.
"""

import numpy as np

from repro.experiments import format_table
from repro.experiments.short_flows import fct_sweep, verus_competitive_ratio


def test_short_flow_fct(run_once):
    rows = run_once(fct_sweep, sizes=(50_000, 200_000, 1_000_000,
                                      5_000_000), repetitions=2,
                    duration=90.0)

    print()
    print(format_table(rows, title="§7 short flows: completion time (s)"))
    ratio = verus_competitive_ratio(rows)
    print(f"geometric-mean Verus/Cubic FCT ratio: {ratio:.2f}")

    # Smallest transfer: slow-start bound, so Verus ≈ TCP (within 2×).
    small = rows[0]
    assert small["verus_fct_s"] < 2.0 * small["cubic_fct_s"]
    # Across the sweep Verus stays competitive overall.
    assert ratio < 1.5
    # FCT grows with size for every protocol.
    for protocol in ("verus", "cubic", "newreno"):
        fcts = [r[f"{protocol}_fct_s"] for r in rows]
        finite = [f for f in fcts if np.isfinite(f)]
        assert all(a <= b * 1.2 for a, b in zip(finite, finite[1:])) or \
            finite == sorted(finite)
