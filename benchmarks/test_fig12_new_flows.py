"""Fig 12 — Verus intra-fairness as new flows arrive.

Seven Verus flows join a 90 Mbps bottleneck 30 s apart.  The first flow
must use the idle link fully, shed bandwidth as others arrive, and the
final allocation must be close to fair.
"""

from repro.experiments import format_series
from repro.experiments.micro import fig12_new_flows


def test_fig12_new_flows(run_once):
    result = run_once(fig12_new_flows, flows=7, stagger=30.0)

    print()
    for flow_id, (t, series) in sorted(result.series.items()):
        print(format_series(f"Verus {flow_id + 1}", t[:: 15],
                            series[:: 15] / 1e6, "t (s)", "Mbps",
                            max_points=12))
    print(f"first flow share while alone: "
          f"{result.first_flow_initial_share:.0%}")
    print(f"Jain index with all seven active: {result.final_jain:.3f}")

    # Paper: "the flow is fully utilizing the 90 Mbps link" at the start,
    # and allocation stays fair as flows join.
    assert result.first_flow_initial_share > 0.8
    assert result.final_jain > 0.7
