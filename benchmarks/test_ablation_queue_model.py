"""Ablation — shared RED queue vs per-flow DRR at the base station.

The paper's §6.2 models the cell with one shared RED queue; §3 notes
real base stations keep per-user queues.  This ablation reruns the
Verus-vs-Cubic contention under both queue models.  Expected shape:

* under the shared queue, Cubic's bufferbloat inflates *everyone's*
  delay, so the co-existing Verus flows suffer;
* under per-flow DRR, Verus flows keep their own short queues and their
  delay advantage survives Cubic's presence — while aggregate capacity
  sharing stays comparable.
"""

import numpy as np

from repro.cellular import generate_scenario_trace
from repro.experiments import FlowSpec, format_table
from repro.metrics import flow_stats
from repro.netsim import DRRQueue, Dumbbell, REDQueue, Simulator, TraceLink
from repro.experiments.runner import make_endpoints


def run_mixed(queue_factory, duration=60.0, seed=33):
    trace = generate_scenario_trace("city_stationary", duration=duration,
                                    technology="3g", mean_rate_bps=16e6,
                                    seed=seed)
    sim = Simulator()
    rng = np.random.default_rng(seed)
    link = TraceLink(sim, trace, queue=queue_factory(rng), delay=0.005,
                     loop=True, rng=rng)
    bell = Dumbbell(sim, link, default_rtt=0.01)
    specs = ([FlowSpec("verus", label="verus", options={"r": 2.0})
              for _ in range(3)]
             + [FlowSpec("cubic", label="cubic") for _ in range(3)])
    receivers = []
    for flow_id, spec in enumerate(specs):
        sender, receiver = make_endpoints(spec, flow_id)
        bell.add_flow(sender, receiver)
        receivers.append((spec.label, receiver))
    sim.run(until=duration)

    out = {}
    for label in ("verus", "cubic"):
        stats = [flow_stats(r.deliveries, start=10.0, end=duration)
                 for l, r in receivers if l == label]
        out[label] = {
            "throughput_mbps": float(np.mean([s.throughput_mbps
                                              for s in stats])),
            "mean_delay_ms": float(np.mean([s.mean_delay_ms
                                            for s in stats])),
        }
    return out


def run_ablation():
    shared = run_mixed(lambda rng: REDQueue.paper_config(rng=rng))
    per_flow = run_mixed(
        lambda rng: DRRQueue(per_flow_capacity_bytes=9_000_000 // 8))
    rows = []
    for model, result in (("shared_red", shared), ("per_flow_drr", per_flow)):
        for label, stats in result.items():
            rows.append({"queue_model": model, "protocol": label, **stats})
    return rows


def test_ablation_queue_model(run_once):
    rows = run_once(run_ablation)

    print()
    print(format_table(rows, title="Ablation: shared RED vs per-flow DRR"))

    def get(model, protocol):
        return next(r for r in rows
                    if r["queue_model"] == model and r["protocol"] == protocol)

    # Per-flow queues isolate Verus from Cubic's bufferbloat: its delay
    # advantage over co-existing Cubic must widen dramatically.
    shared_gap = (get("shared_red", "cubic")["mean_delay_ms"]
                  / max(get("shared_red", "verus")["mean_delay_ms"], 1e-9))
    drr_gap = (get("per_flow_drr", "cubic")["mean_delay_ms"]
               / max(get("per_flow_drr", "verus")["mean_delay_ms"], 1e-9))
    assert drr_gap > 2.0 * shared_gap
    assert get("per_flow_drr", "verus")["mean_delay_ms"] < 100.0
    # Verus still moves data under both models.
    for model in ("shared_red", "per_flow_drr"):
        assert get(model, "verus")["throughput_mbps"] > 0.2
