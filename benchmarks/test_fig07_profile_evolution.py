"""Fig 7 — channel trace and delay-profile evolution.

Runs Verus over a fluctuating LTE channel for minutes, capturing the
profile at every 1 s re-interpolation, and verifies the paper's
observation: "the smaller the available throughput is, the steeper the
delay profile becomes".
"""

import numpy as np

from repro.experiments import format_series
from repro.experiments.profile_study import (
    fig7_profile_evolution,
    profile_tracks_channel,
)


def test_fig7_profile_evolution(run_once):
    # The paper's Fig 7 trace swings 0–35 Mbps over 200 s; the two-level
    # channel replays that alternation in controlled form (5 ↔ 20 Mbps
    # every 25 s) so the profile-vs-capacity relationship is testable.
    result = run_once(fig7_profile_evolution, duration=120.0,
                      cell_rate_bps=20e6, scenario="city_stationary",
                      two_level=True)

    times, tput = result.throughput_series
    print()
    print(format_series("Fig 7a: channel throughput", times, tput / 1e6,
                        "t (s)", "Mbps"))
    print(f"profile snapshots captured: {len(result.snapshots)}  "
          f"(re-interpolations: {result.interpolations})")
    for snap in result.snapshots[:: max(1, len(result.snapshots) // 5)]:
        print(f"  t={snap.time:6.1f}s  knots={snap.windows.size:4d}  "
              f"ls_slope={snap.ls_slope:8.4f} ms/pkt")

    assert len(result.snapshots) >= 10
    assert profile_tracks_channel(result), (
        "low-throughput periods should show steeper profiles")
