"""Fig 9 — the Verus R parameter trades delay for throughput.

Repeats the Fig 8 setup with R ∈ {2, 4, 6}: larger R must increase both
throughput and delay on both technologies.
"""

from repro.experiments import format_table
from repro.experiments.macro import check_fig9_shape, fig9_r_tradeoff


def test_fig9_r_tradeoff(run_once):
    points = run_once(fig9_r_tradeoff, duration=60.0, repetitions=2)

    print()
    print(format_table([p.as_dict() for p in points],
                       title="Fig 9: Verus R = 2 / 4 / 6"))

    checks = check_fig9_shape(points)
    print("shape checks:", checks)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"
