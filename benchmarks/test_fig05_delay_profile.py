"""Fig 5 — an example Verus delay profile.

Runs one Verus flow over an LTE trace and prints the learned
(window → delay) curve, reproducing the profile shape the paper plots.
"""

import numpy as np

from repro.experiments import format_series
from repro.experiments.profile_study import fig5_example_profile


def test_fig5_delay_profile(run_once):
    profile = run_once(fig5_example_profile, duration=60.0,
                       cell_rate_bps=20e6)

    print()
    print(format_series("Fig 5: Verus delay profile", profile.windows,
                        profile.delays_ms, "W (pkts)", "D (ms)"))

    # Shape: many recorded points; delay grows with window overall
    # (green dots in the paper rise to the right).
    assert profile.windows.size >= 20
    assert profile.delays_ms[-1] > 1.5 * profile.delays_ms[0]

    # Correlation between window and delay should be clearly positive.
    corr = np.corrcoef(profile.windows, profile.delays_ms)[0, 1]
    assert corr > 0.5
