"""Fig 1 — LTE 10 Mbps burst arrival pattern.

Regenerates the per-packet (arrival time, delay) scatter of a 300 ms
window on an LTE downlink, showing the TTI burst-scheduling structure.
"""

from repro.experiments import format_series, format_table
from repro.experiments.channel_study import fig1_burst_arrivals


def test_fig1_burst_arrivals(run_once):
    result = run_once(fig1_burst_arrivals, duration=90.0,
                      window=(85.0, 85.3))

    print()
    print(format_series("Fig 1: LTE burst arrivals", result.times,
                        result.delays * 1e3, "t (s)", "delay (ms)"))
    print(format_table([result.stats.summary()],
                       title="burst statistics over the full trace"))

    # Shape: arrivals are clustered into multi-packet bursts, and delays
    # within the window vary on a millisecond scale (the Fig 1 sawtooth).
    assert result.times.size > 10
    assert result.stats.summary()["mean_size_bytes"] > 1400
    spread = result.delays.max() - result.delays.min()
    assert spread > 0.001
