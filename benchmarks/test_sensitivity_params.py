"""§5.3 — parameter sensitivity sweeps (ε, update interval, δ1/δ2, α).

Regenerates the sweeps behind the paper's chosen defaults: ε = 5 ms,
1 s profile updates, δ1/δ2 = 1/2 ms.
"""

from repro.experiments import format_table
from repro.experiments.sensitivity import (
    sweep_alpha,
    sweep_deltas,
    sweep_epoch,
    sweep_update_interval,
)


def test_sweep_epoch(run_once):
    rows = run_once(sweep_epoch, duration=45.0)
    print()
    print(format_table(rows, title="§5.3 sweep: epoch ε"))
    by_setting = {r["setting"]: r for r in rows}
    # Very long epochs react too slowly: the paper's 5 ms choice should
    # not lose to 50 ms on delay-adjusted performance.
    fast = by_setting["epoch_5ms"]
    slow = by_setting["epoch_50ms"]
    fast_score = fast["mean_throughput_mbps"] / max(fast["mean_delay_ms"], 1)
    slow_score = slow["mean_throughput_mbps"] / max(slow["mean_delay_ms"], 1)
    assert fast_score > 0.8 * slow_score
    assert all(r["mean_throughput_mbps"] > 0 for r in rows)


def test_sweep_update_interval(run_once):
    rows = run_once(sweep_update_interval, duration=45.0)
    print()
    print(format_table(rows, title="§5.3 sweep: profile update interval"))
    assert len(rows) == 5
    assert all(r["mean_throughput_mbps"] > 0 for r in rows)


def test_sweep_deltas(run_once):
    rows = run_once(sweep_deltas, duration=45.0)
    print()
    print(format_table(rows, title="§5.3 sweep: δ1/δ2"))
    by_setting = {r["setting"]: r for r in rows}
    # Larger deltas are more aggressive: the biggest pair should not have
    # *lower* delay than the smallest pair.
    small = by_setting["d0.5_1ms"]
    large = by_setting["d2_4ms"]
    assert large["mean_delay_ms"] >= 0.7 * small["mean_delay_ms"]


def test_sweep_alpha(run_once):
    rows = run_once(sweep_alpha, duration=45.0)
    print()
    print(format_table(rows, title="sweep: EWMA α (eq. 2)"))
    assert len(rows) == 4
