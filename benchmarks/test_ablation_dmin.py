"""Ablation — windowed vs lifetime D_min (DESIGN.md §4a).

The reproduction's one deliberate protocol deviation.  This bench
measures both settings on the two experiments the choice trades off:

* RTT fairness (Fig 13 setup): the windowed minimum lets long-RTT and
  late-joining flows re-anchor their eq. 4 ratio test; the lifetime
  minimum starves them.
* TCP coexistence (Fig 14 setup): the lifetime minimum keeps Verus's
  delay tolerance anchored to the uncongested path so it yields to
  Cubic; the windowed minimum creeps under Cubic's standing queue and
  out-competes it.
"""

from repro.experiments import format_table
from repro.experiments.runner import FlowSpec, run_fixed_dumbbell
from repro.metrics import flow_stats, jain_index


def rtt_fairness(dmin_window):
    specs = [FlowSpec("verus", label=f"verus_{int(r * 1e3)}ms", rtt=r,
                      options={"r": 2.0, "dmin_window": dmin_window})
             for r in (0.020, 0.050, 0.100)]
    result = run_fixed_dumbbell(60e6, specs, duration=120.0, rtt=0.02,
                                queue_bytes=1_500_000, seed=19)
    tputs = [s.throughput_bps for s in result.all_stats()]
    return jain_index(tputs), sum(tputs)


def cubic_coexistence(dmin_window):
    specs = [FlowSpec("verus", label=f"verus_{i}", start_at=i * 30.0,
                      options={"r": 6.0, "dmin_window": dmin_window})
             for i in range(3)]
    specs += [FlowSpec("cubic", label=f"cubic_{i}",
                       start_at=(i + 3) * 30.0) for i in range(3)]
    result = run_fixed_dumbbell(60e6, specs, duration=210.0, rtt=0.02,
                                queue_bytes=900_000, seed=29)
    tail = {s.label: flow_stats(result.deliveries(i), start=160.0,
                                end=210.0).throughput_bps
            for i, s in enumerate(specs)}
    verus = sum(v for k, v in tail.items() if k.startswith("verus"))
    cubic = sum(v for k, v in tail.items() if k.startswith("cubic"))
    return verus / max(cubic, 1.0)


def run_ablation():
    rows = []
    for label, window in (("windowed_10s", 10.0), ("lifetime", None)):
        jain, total = rtt_fairness(window)
        ratio = cubic_coexistence(window)
        rows.append({
            "dmin": label,
            "fig13_jain": jain,
            "fig13_total_mbps": total / 1e6,
            "fig14_verus_cubic_ratio": ratio,
        })
    return rows


def test_ablation_dmin(run_once):
    rows = run_once(run_ablation)

    print()
    print(format_table(rows, title="Ablation: windowed vs lifetime D_min"))

    windowed = rows[0]
    lifetime = rows[1]
    # The trade-off must be visible in both directions:
    # windowed D_min (with the floor re-base) keeps RTT sharing sane...
    assert windowed["fig13_jain"] >= lifetime["fig13_jain"] - 0.05
    assert windowed["fig13_jain"] > 0.55
    # ...while lifetime D_min buys TCP coexistence.
    assert (abs(lifetime["fig14_verus_cubic_ratio"] - 1.0)
            < abs(windowed["fig14_verus_cubic_ratio"] - 1.0))
    assert 0.1 < lifetime["fig14_verus_cubic_ratio"] < 10.0
