"""Fig 8 — real-world macro comparison on 3G and LTE.

Three phones × three flows of one protocol at a time share a cell;
reports the averaged throughput/delay point per protocol, reproducing:
Verus delay an order of magnitude below Cubic/Vegas at comparable
throughput, sitting near Sprout with slightly more of both.
"""

from repro.experiments import format_table
from repro.experiments.macro import check_fig8_shape, fig8_realworld


def test_fig8_realworld(run_once):
    points = run_once(fig8_realworld, duration=60.0, repetitions=2)

    print()
    print(format_table([p.as_dict() for p in points],
                       title="Fig 8: averaged throughput vs delay"))

    checks = check_fig8_shape(points)
    print("shape checks:", checks)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"
