"""Fig 8 — real-world macro comparison on 3G and LTE.

Three phones × three flows of one protocol at a time share a cell;
reports the averaged throughput/delay point per protocol, reproducing:
Verus delay an order of magnitude below Cubic/Vegas at comparable
throughput, sitting near Sprout with slightly more of both.

The channel comes from the committed ``corpora/fig8`` mini-corpus: a
content-addressed manifest of the macro scenario's traces (stationary
regime, 3G/LTE macro rates, the experiment's per-repetition seeds).
Trace files are regenerated from the manifest on demand and verified
against their recorded SHA-256, so every benchmark run — on any machine
— replays bit-identical channels.
"""

from pathlib import Path

import pytest

from repro.experiments import format_table
from repro.experiments.macro import check_fig8_shape, fig8_realworld
from repro.traces import CorpusError, load_corpus

CORPUS_DIR = Path(__file__).parent / "corpora" / "fig8"

#: fig8_realworld's per-repetition seed schedule (seed + 101 * rep).
FIG8_SEEDS = {rep: 42 + 101 * rep for rep in range(2)}


@pytest.fixture(scope="module")
def fig8_corpus():
    try:
        corpus = load_corpus(CORPUS_DIR)
        corpus.materialize()   # regenerate any missing/stale trace files
    except CorpusError as exc:
        pytest.fail(f"fig8 mini-corpus unusable: {exc}")
    return corpus


def test_fig8_realworld(run_once, fig8_corpus):
    def trace_provider(technology, rep):
        return fig8_corpus.load_seconds(
            f"stationary-{technology}-s{FIG8_SEEDS[rep]}")

    points = run_once(fig8_realworld, duration=60.0, repetitions=2,
                      trace_provider=trace_provider)

    print()
    print(format_table([p.as_dict() for p in points],
                       title="Fig 8: averaged throughput vs delay"))

    checks = check_fig8_shape(points)
    print("shape checks:", checks)
    failed = [name for name, ok in checks.items() if not ok]
    assert not failed, f"shape checks failed: {failed}"
