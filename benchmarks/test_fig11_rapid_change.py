"""Fig 11 — rapidly changing networks (scenarios I and II).

Every 5 s the bottleneck's capacity, RTT and loss are redrawn.
Scenario I (10–100 Mbps): Verus tracks the capacity while Sprout is
pinned by its 18 Mbps implementation cap.  Scenario II (2–20 Mbps):
Sprout recovers but Verus still averages higher throughput.
"""

from repro.experiments import format_series, format_table
from repro.experiments.micro import fig11_rapid_change


def _print_result(result, title):
    rows = [{"protocol": name,
             "throughput_mbps": stats["throughput_bps"] / 1e6,
             "mean_delay_ms": stats["mean_delay_ms"],
             "utilization": result.utilization(name)}
            for name, stats in result.stats.items()]
    print()
    print(format_table(rows, title=title))
    for name, (t, series) in result.series.items():
        print(format_series(f"  {name} throughput", t[:: 10],
                            series[:: 10] / 1e6, "t (s)", "Mbps"))


def test_fig11_scenario_i(run_once):
    result = run_once(fig11_rapid_change, "I", duration=200.0)
    _print_result(result, "Fig 11a: capacity 10-100 Mbps")

    verus = result.stats["verus"]["throughput_bps"]
    sprout = result.stats["sprout"]["throughput_bps"]
    cubic = result.stats["cubic"]["throughput_bps"]
    # Sprout capped well below the channel; Verus far ahead of it.
    assert sprout < 20e6
    assert verus > 1.5 * sprout
    # Verus keeps pace with loss-based TCP on average.
    assert verus > 0.5 * cubic


def test_fig11_scenario_ii(run_once):
    result = run_once(fig11_rapid_change, "II", duration=200.0)
    _print_result(result, "Fig 11b: capacity 2-20 Mbps")

    verus = result.stats["verus"]
    sprout = result.stats["sprout"]
    # Paper: "Sprout performs better than before, but Verus still
    # achieves higher throughput on average than Sprout."
    assert verus["throughput_bps"] > sprout["throughput_bps"]
    # Both remain low-delay protocols in this regime.
    assert verus["mean_delay_ms"] < 250
    assert sprout["mean_delay_ms"] < 250
