"""Fig 4 + §3 predictors — windowed throughput variability.

Regenerates the 100 ms / 20 ms windowed throughput of a 3G stationary
downlink and the accompanying result that simple predictors (linear,
k-step/Holt, EWMA) fail to track the channel.
"""

from repro.experiments import format_series, format_table
from repro.experiments.channel_study import fig4_throughput_windows


def test_fig4_throughput_windows(run_once):
    result = run_once(fig4_throughput_windows, duration=180.0)

    cv100 = result.variability(result.window_100ms[1])
    cv20 = result.variability(result.window_20ms[1])

    print()
    t, series = result.window_100ms
    print(format_series("Fig 4a: 100 ms windows", t[:40],
                        series[:40] / 1e6, "t (s)", "Mbps"))
    t, series = result.window_20ms
    print(format_series("Fig 4b: 20 ms windows", t[:40],
                        series[:40] / 1e6, "t (s)", "Mbps"))
    print(f"coefficient of variation: 100ms={cv100:.2f}  20ms={cv20:.2f}")
    print(format_table(result.predictor_rows, title="§3 predictor study"))

    # Shape: dramatic fluctuations, worse at finer timescales; no
    # predictor reduces RMSE much below the naive baseline at 20 ms.
    assert cv20 > cv100 > 0.2
    for row in result.predictor_rows:
        if row["series"].startswith("20ms"):
            assert row["rmse_vs_naive"] > 0.4
